//! Dataset generators: canonical entities → noisy per-source profiles.

pub use crate::noise::NoiseConfig;
use crate::noise::{corrupt_value, drop_attribute};
use crate::vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparker_profiles::{GroundTruth, Pair, Profile, ProfileCollection, ProfileId, SourceId};

/// Which real-dataset shape to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Abt-Buy-like product catalogues: `name`/`description`/`price` vs
    /// `title`/`descr`/`cost`.
    Products,
    /// DBLP-ACM-like bibliographies: `title`/`authors`/`venue`/`year` vs
    /// `name`/`author list`/`booktitle`/`date`.
    Bibliographic,
    /// Movie catalogues: `title`/`director`/`actors`/`year`/`genre` vs
    /// `name`/`directed by`/`starring`/`release`/`category`.
    Movies,
    /// DBLP–Scholar-like citations: a structured bibliography
    /// (`title`/`authors`/`venue`/`year`) matched against a source whose
    /// records are a single free-text `citation` string — the extreme
    /// heterogeneity case where schema-aware blocking has nothing to align
    /// and schema-agnostic tokens are the only evidence.
    Citations,
}

impl Domain {
    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Products => "products",
            Domain::Bibliographic => "bibliographic",
            Domain::Movies => "movies",
            Domain::Citations => "citations",
        }
    }

    /// Attribute names used by each source (schema heterogeneity is the
    /// point: the loose-schema generator must re-align them from values).
    fn attribute_names(&self, source: SourceId) -> &'static [&'static str] {
        match (self, source.0) {
            (Domain::Products, 0) => &["name", "description", "price"],
            (Domain::Products, _) => &["title", "descr", "cost"],
            (Domain::Bibliographic, 0) => &["title", "authors", "venue", "year"],
            (Domain::Bibliographic, _) => &["name", "author list", "booktitle", "date"],
            (Domain::Movies, 0) => &["title", "director", "actors", "year", "genre"],
            (Domain::Movies, _) => &["name", "directed by", "starring", "release", "category"],
            (Domain::Citations, 0) => &["title", "authors", "venue", "year"],
            (Domain::Citations, _) => &["citation"],
        }
    }

    /// Canonical attribute values of entity `id` for each source
    /// (index-aligned with [`Domain::attribute_names`] of that source).
    ///
    /// For products the two sources describe the entity *asymmetrically*,
    /// the way Abt.com and Buy.com do: source 0 has a terse name
    /// (brand + model) and a long description repeating the full title plus
    /// specs; source 1 has a full title but a spec-only description without
    /// brand or model. Cross-attribute evidence (source-0 description ↔
    /// source-1 title) is therefore essential for some pairs — the property
    /// the paper's Figure 6(c,d) manual-edit walk-through hinges on.
    fn canonical(&self, id: usize, rng: &mut StdRng) -> [Vec<String>; 2] {
        fn pick<'a>(pool: &'a [&'a str], rng: &mut StdRng) -> &'a str {
            pool[rng.gen_range(0..pool.len())]
        }
        match self {
            Domain::Products => {
                let brand = pick(vocab::BRANDS, rng);
                let ptype = pick(vocab::PRODUCT_TYPES, rng);
                let adj = pick(vocab::ADJECTIVES, rng);
                let color = pick(vocab::COLORS, rng);
                let size = pick(vocab::SIZES, rng);
                let spec = pick(vocab::SPECS, rng);
                let model = format!(
                    "{}{}{}",
                    brand.chars().next().unwrap(),
                    ptype.chars().next().unwrap(),
                    1000 + id
                );
                let title = format!("{brand} {adj} {ptype} {model} {color}");
                let n_filler = rng.gen_range(4..9);
                let filler: Vec<&str> = (0..n_filler)
                    .map(|_| pick(vocab::DESCRIPTION_FILLER, rng))
                    .collect();
                // Low-entropy price from a small set of retail price points,
                // whose integer parts collide with description sizes.
                let price = pick(vocab::PRICE_POINTS, rng).to_string();
                // Source 0: terse name, description repeats the full title.
                let description0 =
                    format!("{title} {} {size} inch {spec} display", filler.join(" "));
                let name0 = format!("{brand} {model}");
                // Source 1: full title; the description repeats the title
                // plus specs — but is missing entirely for a large share of
                // records (as in real catalogues), so those pairs depend on
                // cross-attribute evidence (source-0 description ↔ source-1
                // title).
                let descr1 = if rng.gen_bool(0.45) {
                    String::new() // missing attribute (builder drops blanks)
                } else {
                    format!(
                        "{title} {} {size} inch {spec} {} year warranty",
                        filler.join(" "),
                        rng.gen_range(1..4)
                    )
                };
                [
                    vec![name0, description0, price.clone()],
                    vec![title, descr1, price],
                ]
            }
            Domain::Bibliographic => {
                let n_title = rng.gen_range(4..8);
                let title: Vec<&str> = (0..n_title)
                    .map(|_| pick(vocab::TOPIC_WORDS, rng))
                    .collect();
                let n_auth = rng.gen_range(2..5);
                let authors: Vec<String> = (0..n_auth)
                    .map(|_| {
                        let s = pick(vocab::SURNAMES, rng);
                        let initial = (b'a' + rng.gen_range(0..26u8)) as char;
                        format!("{initial}. {s}")
                    })
                    .collect();
                let venue = pick(vocab::VENUES, rng).to_string();
                let year = format!("{}", 1995 + rng.gen_range(0..28));
                let values = vec![
                    format!("{} {id}", title.join(" ")),
                    authors.join(", "),
                    venue,
                    year,
                ];
                [values.clone(), values]
            }
            Domain::Citations => {
                let n_title = rng.gen_range(4..8);
                let title: Vec<&str> = (0..n_title)
                    .map(|_| pick(vocab::TOPIC_WORDS, rng))
                    .collect();
                let title = format!("{} {id}", title.join(" "));
                let n_auth = rng.gen_range(1..4);
                let authors: Vec<String> = (0..n_auth)
                    .map(|_| {
                        let s = pick(vocab::SURNAMES, rng);
                        let initial = (b'a' + rng.gen_range(0..26u8)) as char;
                        format!("{initial}. {s}")
                    })
                    .collect();
                let venue = pick(vocab::VENUES, rng);
                let year = 1995 + rng.gen_range(0..28);
                let pages = rng.gen_range(1..500);
                // Source 1 is one flattened citation string, Scholar-style.
                let citation = format!(
                    "{}. {title}. in {} {year}, pp {pages}-{}",
                    authors.join(", "),
                    venue.to_uppercase(),
                    pages + rng.gen_range(5..25),
                );
                [
                    vec![
                        title,
                        authors.join(", "),
                        venue.to_string(),
                        year.to_string(),
                    ],
                    vec![citation],
                ]
            }
            Domain::Movies => {
                let n_title = rng.gen_range(2..5);
                let title: Vec<&str> = (0..n_title)
                    .map(|_| pick(vocab::MOVIE_WORDS, rng))
                    .collect();
                let director = format!(
                    "{}. {}",
                    (b'a' + rng.gen_range(0..26u8)) as char,
                    pick(vocab::SURNAMES, rng)
                );
                let actors: Vec<String> = (0..3)
                    .map(|_| {
                        format!(
                            "{}. {}",
                            (b'a' + rng.gen_range(0..26u8)) as char,
                            pick(vocab::SURNAMES, rng)
                        )
                    })
                    .collect();
                let year = format!("{}", 1960 + rng.gen_range(0..64));
                let genre = pick(vocab::GENRES, rng).to_string();
                let values = vec![
                    format!("{} {id}", title.join(" ")),
                    director,
                    actors.join(", "),
                    year,
                    genre,
                ];
                [values.clone(), values]
            }
        }
    }
}

/// Rank-correlated Zipfian block-size skew.
///
/// Real catalogues are ordered by popularity: the head of the file is full
/// of best-sellers that share high-frequency tokens, so the blocking graph
/// has a *contiguous* hub region at low profile ids — the worst case for
/// equal-count contiguous partitioning. This knob reproduces that shape:
/// the first `hot_entity_fraction` of entities (by ascending id) each get
/// `appends` extra tokens drawn from a pool of `hot_tokens` hot tokens
/// with Zipfian rank probabilities (`P(rank r) ∝ 1/r^exponent`), producing
/// a few enormous blocks concentrated on the low-id prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSkew {
    /// Size of the hot-token pool.
    pub hot_tokens: usize,
    /// Zipf exponent `s`; larger = more mass on the top-ranked tokens.
    pub exponent: f64,
    /// Fraction of entities (lowest ids first) that receive hot tokens.
    pub hot_entity_fraction: f64,
    /// Hot tokens appended to each hot entity.
    pub appends: usize,
}

impl Default for ZipfSkew {
    /// A pronounced but realistic skew: an eighth of the catalogue is
    /// "popular", sharing 16 hot tokens at exponent 1.1.
    fn default() -> Self {
        ZipfSkew {
            hot_tokens: 16,
            exponent: 1.1,
            hot_entity_fraction: 0.125,
            appends: 3,
        }
    }
}

impl ZipfSkew {
    /// Normalized CDF over the hot-token ranks.
    fn cdf(&self) -> Vec<f64> {
        assert!(self.hot_tokens >= 1, "need at least one hot token");
        assert!(self.exponent > 0.0, "Zipf exponent must be positive");
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = (1..=self.hot_tokens)
            .map(|r| {
                acc += 1.0 / (r as f64).powf(self.exponent);
                acc
            })
            .collect();
        let total = *cdf.last().unwrap();
        for c in &mut cdf {
            *c /= total;
        }
        cdf
    }

    /// Append the sampled hot tokens for one hot entity to every canonical
    /// representation's first attribute.
    fn apply(&self, cdf: &[f64], canonical: &mut [Vec<String>; 2], rng: &mut StdRng) {
        for _ in 0..self.appends {
            let u: f64 = rng.gen_range(0.0..1.0);
            let rank = cdf.partition_point(|&c| c < u).min(self.hot_tokens - 1);
            for repr in canonical.iter_mut() {
                if let Some(first) = repr.first_mut() {
                    first.push_str(&format!(" hot{rank}"));
                }
            }
        }
    }
}

/// Configuration of a generated benchmark.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Entities present in *both* sources (= size of the ground truth for
    /// clean–clean generation).
    pub entities: usize,
    /// Additional distractor entities present in only one source (each).
    pub unmatched_per_source: usize,
    /// Domain shape.
    pub domain: Domain,
    /// Corruption applied to the second representation.
    pub noise: NoiseConfig,
    /// Master seed; everything is a pure function of the configuration.
    pub seed: u64,
    /// Optional rank-correlated block-size skew. `None` (the default)
    /// leaves the generator's output — and its RNG stream — untouched.
    pub skew: Option<ZipfSkew>,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            entities: 500,
            unmatched_per_source: 100,
            domain: Domain::Products,
            noise: NoiseConfig::default(),
            seed: 42,
            skew: None,
        }
    }
}

impl DatasetConfig {
    /// `true` when entity index `i` falls in the skewed (hot) id prefix.
    fn is_hot(&self, i: usize) -> bool {
        match &self.skew {
            Some(s) => (i as f64) < self.entities as f64 * s.hot_entity_fraction,
            None => false,
        }
    }
}

/// A generated benchmark: profiles plus exact ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The profile collection (clean–clean or dirty depending on the
    /// generator used).
    pub collection: ProfileCollection,
    /// The exact set of true matches.
    pub ground_truth: GroundTruth,
}

fn render_profile(
    domain: Domain,
    source: SourceId,
    original_id: String,
    canonical: &[String],
    corrupt: bool,
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> Profile {
    let names = domain.attribute_names(source);
    // Decide survivors first so a record never ends up attribute-less
    // (real sources always carry at least one value).
    let mut kept: Vec<(&str, &String)> = Vec::with_capacity(names.len());
    for (name, value) in names.iter().zip(canonical) {
        if corrupt && drop_attribute(noise, rng) {
            continue;
        }
        kept.push((name, value));
    }
    if kept.is_empty() {
        kept.push((names[0], &canonical[0]));
    }
    let mut b = Profile::builder(source, original_id);
    for (name, value) in kept {
        let v = if corrupt {
            corrupt_value(value, noise, rng)
        } else {
            value.clone()
        };
        b = b.attr(name, v);
    }
    b.build()
}

/// Generate a clean–clean benchmark: `entities` matched pairs plus
/// `unmatched_per_source` distractors per source. Source 0 carries the
/// canonical values; source 1 a corrupted rendering under its own schema.
pub fn generate(config: &DatasetConfig) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf_cdf = config.skew.as_ref().map(ZipfSkew::cdf);
    let mut s0 = Vec::with_capacity(config.entities + config.unmatched_per_source);
    let mut s1 = Vec::with_capacity(config.entities + config.unmatched_per_source);
    let mut gt_pairs: Vec<(String, String)> = Vec::with_capacity(config.entities);

    for i in 0..config.entities {
        let mut canonical = config.domain.canonical(i, &mut rng);
        if config.is_hot(i) {
            let skew = config.skew.as_ref().unwrap();
            skew.apply(zipf_cdf.as_ref().unwrap(), &mut canonical, &mut rng);
        }
        let oid = format!("e{i}");
        s0.push(render_profile(
            config.domain,
            SourceId(0),
            oid.clone(),
            &canonical[0],
            false,
            &config.noise,
            &mut rng,
        ));
        s1.push(render_profile(
            config.domain,
            SourceId(1),
            oid.clone(),
            &canonical[1],
            true,
            &config.noise,
            &mut rng,
        ));
        gt_pairs.push((oid.clone(), oid));
    }
    for i in 0..config.unmatched_per_source {
        let c0 = config.domain.canonical(config.entities + i, &mut rng);
        s0.push(render_profile(
            config.domain,
            SourceId(0),
            format!("u0-{i}"),
            &c0[0],
            false,
            &config.noise,
            &mut rng,
        ));
        let c1 = config
            .domain
            .canonical(config.entities + config.unmatched_per_source + i, &mut rng);
        s1.push(render_profile(
            config.domain,
            SourceId(1),
            format!("u1-{i}"),
            &c1[1],
            true,
            &config.noise,
            &mut rng,
        ));
    }

    let collection = ProfileCollection::clean_clean(s0, s1);
    let ground_truth = GroundTruth::from_original_ids(
        &collection,
        gt_pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("generated ids always resolve");
    GeneratedDataset {
        collection,
        ground_truth,
    }
}

/// Generate a dirty benchmark: one source containing duplicate clusters.
/// Each entity gets 1–`max_cluster` representations (the first canonical,
/// the rest corrupted); the ground truth contains all intra-cluster pairs.
pub fn generate_dirty(config: &DatasetConfig, max_cluster: usize) -> GeneratedDataset {
    let mut profiles = Vec::new();
    let ground_truth = generate_dirty_chunked(config, max_cluster, usize::MAX, |chunk| {
        profiles.extend(chunk)
    });
    GeneratedDataset {
        collection: ProfileCollection::dirty(profiles),
        ground_truth,
    }
}

/// [`generate_dirty`] with bounded materialization: profiles are handed to
/// `emit` in chunks of at least `chunk_size` (flushed only at entity-cluster
/// boundaries, so a cluster never straddles two chunks) and never
/// accumulated. One RNG drives the whole stream, so the concatenation of
/// the chunks is byte-identical to the monolithic generator's collection at
/// every chunk size (pinned by tests) — profile ids come pre-assigned in
/// emission order, exactly as [`ProfileCollection::dirty`] would assign
/// them. Returns the full ground truth (intra-cluster pairs; compact even
/// at 10⁶ profiles).
pub fn generate_dirty_chunked(
    config: &DatasetConfig,
    max_cluster: usize,
    chunk_size: usize,
    mut emit: impl FnMut(Vec<Profile>),
) -> GroundTruth {
    assert!(max_cluster >= 1, "clusters need at least one member");
    assert!(chunk_size >= 1, "chunk size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf_cdf = config.skew.as_ref().map(ZipfSkew::cdf);
    let mut chunk: Vec<Profile> = Vec::new();
    let mut next_id = 0usize;
    let mut pairs = Vec::new();

    for i in 0..config.entities {
        let mut canonical = config.domain.canonical(i, &mut rng);
        if config.is_hot(i) {
            let skew = config.skew.as_ref().unwrap();
            skew.apply(zipf_cdf.as_ref().unwrap(), &mut canonical, &mut rng);
        }
        let size = rng.gen_range(1..=max_cluster);
        let first = next_id;
        for rep in 0..size {
            let mut p = render_profile(
                config.domain,
                SourceId(0),
                format!("e{i}-{rep}"),
                &canonical[0],
                rep > 0,
                &config.noise,
                &mut rng,
            );
            p.id = ProfileId(next_id as u32);
            p.source = SourceId(0);
            chunk.push(p);
            next_id += 1;
        }
        for a in first..next_id {
            for b in a + 1..next_id {
                pairs.push(Pair::new(ProfileId(a as u32), ProfileId(b as u32)));
            }
        }
        if chunk.len() >= chunk_size {
            emit(std::mem::take(&mut chunk));
        }
    }
    if !chunk.is_empty() {
        emit(chunk);
    }
    GroundTruth::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::ErKind;

    #[test]
    fn generation_is_deterministic() {
        let config = DatasetConfig {
            entities: 50,
            ..DatasetConfig::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.collection.profiles(), b.collection.profiles());
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = generate(&DatasetConfig { seed: 43, ..config });
        assert_ne!(a.collection.profiles(), c.collection.profiles());
    }

    #[test]
    fn clean_clean_shape_and_ground_truth() {
        let config = DatasetConfig {
            entities: 40,
            unmatched_per_source: 10,
            ..DatasetConfig::default()
        };
        let ds = generate(&config);
        assert_eq!(ds.collection.kind(), ErKind::CleanClean);
        assert_eq!(ds.collection.len(), 100);
        assert_eq!(ds.collection.separator(), 50);
        assert_eq!(ds.ground_truth.len(), 40);
        // Ground truth links cross-source profiles only.
        for p in ds.ground_truth.iter() {
            assert!(p.first.0 < 50 && p.second.0 >= 50);
        }
    }

    #[test]
    fn schemas_differ_between_sources() {
        let ds = generate(&DatasetConfig {
            entities: 5,
            unmatched_per_source: 0,
            ..DatasetConfig::default()
        });
        let names = ds.collection.attribute_names();
        let s0: Vec<&str> = names
            .iter()
            .filter(|(s, _)| s.0 == 0)
            .map(|(_, n)| n.as_str())
            .collect();
        let s1: Vec<&str> = names
            .iter()
            .filter(|(s, _)| s.0 == 1)
            .map(|(_, n)| n.as_str())
            .collect();
        assert!(s0.contains(&"name") && s0.contains(&"price"));
        assert!(s1.contains(&"title") && s1.contains(&"cost"));
    }

    #[test]
    fn duplicates_share_tokens_under_default_noise() {
        let ds = generate(&DatasetConfig {
            entities: 30,
            unmatched_per_source: 0,
            ..DatasetConfig::default()
        });
        let mut overlapping = 0;
        for pair in ds.ground_truth.iter() {
            let a = ds.collection.get(pair.first).token_set();
            let b = ds.collection.get(pair.second).token_set();
            if a.intersection(&b).count() >= 2 {
                overlapping += 1;
            }
        }
        assert!(
            overlapping >= 28,
            "only {overlapping}/30 duplicates share ≥2 tokens"
        );
    }

    #[test]
    fn all_domains_generate() {
        for domain in [
            Domain::Products,
            Domain::Bibliographic,
            Domain::Movies,
            Domain::Citations,
        ] {
            let ds = generate(&DatasetConfig {
                entities: 20,
                unmatched_per_source: 5,
                domain,
                ..DatasetConfig::default()
            });
            assert_eq!(ds.collection.len(), 50, "{}", domain.name());
            assert!(
                ds.collection.profiles().iter().all(|p| !p.is_blank()),
                "{}",
                domain.name()
            );
        }
    }

    #[test]
    fn citations_source1_is_single_attribute() {
        let ds = generate(&DatasetConfig {
            entities: 10,
            unmatched_per_source: 0,
            domain: Domain::Citations,
            noise: NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        let names = ds.collection.attribute_names();
        let s1: Vec<&str> = names
            .iter()
            .filter(|(s, _)| s.0 == 1)
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(s1, vec!["citation"], "source 1 is unstructured");
        // The citation string contains the structured side's evidence.
        for pair in ds.ground_truth.iter() {
            let a = ds.collection.get(pair.first).token_set();
            let b = ds.collection.get(pair.second).token_set();
            let shared = a.intersection(&b).count();
            assert!(shared >= 4, "{pair}: only {shared} shared tokens");
        }
    }

    #[test]
    fn dirty_generation_clusters() {
        let config = DatasetConfig {
            entities: 30,
            ..DatasetConfig::default()
        };
        let ds = generate_dirty(&config, 3);
        assert_eq!(ds.collection.kind(), ErKind::Dirty);
        assert!(ds.collection.len() >= 30 && ds.collection.len() <= 90);
        // Every ground-truth pair shares the entity prefix of its original ids.
        for p in ds.ground_truth.iter() {
            let a = &ds.collection.get(p.first).original_id;
            let b = &ds.collection.get(p.second).original_id;
            assert_eq!(a.split('-').next(), b.split('-').next(), "{a} vs {b}");
        }
    }

    #[test]
    fn zipf_skew_concentrates_hot_tokens_on_low_ids() {
        let skew = ZipfSkew::default();
        let frac = skew.hot_entity_fraction;
        let config = DatasetConfig {
            entities: 200,
            unmatched_per_source: 0,
            skew: Some(skew),
            ..DatasetConfig::default()
        };
        let ds = generate_dirty(&config, 1); // one profile per entity → id = entity index
        let hot_cut = (200.0 * frac) as usize;
        for (i, p) in ds.collection.profiles().iter().enumerate() {
            let has_hot = p.token_set().iter().any(|t| t.starts_with("hot"));
            if i < hot_cut {
                assert!(has_hot, "hot-prefix profile {i} missing hot tokens");
            } else {
                assert!(!has_hot, "cold profile {i} got hot tokens");
            }
        }
    }

    #[test]
    fn zipf_skew_ranks_follow_popularity() {
        // Rank 0 must be (substantially) more frequent than the tail rank:
        // the whole point of the Zipfian pool is a few enormous blocks.
        let skew = ZipfSkew::default();
        let top = format!("hot{}", 0);
        let tail = format!("hot{}", skew.hot_tokens - 1);
        let ds = generate_dirty(
            &DatasetConfig {
                entities: 400,
                unmatched_per_source: 0,
                skew: Some(skew.clone()),
                ..DatasetConfig::default()
            },
            1,
        );
        let count = |tok: &str| {
            ds.collection
                .profiles()
                .iter()
                .filter(|p| p.token_set().contains(tok))
                .count()
        };
        assert!(
            count(&top) > 2 * count(&tail).max(1),
            "hot0 ({}) not dominant over hot{} ({})",
            count(&top),
            skew.hot_tokens - 1,
            count(&tail),
        );
    }

    #[test]
    fn skew_none_is_byte_identical_to_default() {
        // The Option gate must not perturb the RNG stream.
        let base = DatasetConfig {
            entities: 60,
            ..DatasetConfig::default()
        };
        let with_none = DatasetConfig {
            skew: None,
            ..base.clone()
        };
        assert_eq!(
            generate(&base).collection.profiles(),
            generate(&with_none).collection.profiles()
        );
        let skewed = generate(&DatasetConfig {
            skew: Some(ZipfSkew::default()),
            ..base
        });
        assert_ne!(
            generate(&with_none).collection.profiles(),
            skewed.collection.profiles()
        );
    }

    #[test]
    fn dirty_max_cluster_one_has_empty_ground_truth() {
        let ds = generate_dirty(
            &DatasetConfig {
                entities: 10,
                ..DatasetConfig::default()
            },
            1,
        );
        assert!(ds.ground_truth.is_empty());
        assert_eq!(ds.collection.len(), 10);
    }

    #[test]
    fn zero_noise_duplicates_share_strong_evidence() {
        // Products are asymmetric by design (the two sources describe the
        // entity differently), so token sets differ even without noise —
        // but the shared core (brand, model, specs, filler) stays large.
        let ds = generate(&DatasetConfig {
            entities: 10,
            unmatched_per_source: 0,
            noise: NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        for pair in ds.ground_truth.iter() {
            let a = ds.collection.get(pair.first).token_set();
            let b = ds.collection.get(pair.second).token_set();
            assert!(a.intersection(&b).count() >= 5, "{pair}");
        }
        // Symmetric domains ARE textual copies at zero noise.
        let ds = generate(&DatasetConfig {
            entities: 10,
            unmatched_per_source: 0,
            domain: Domain::Bibliographic,
            noise: NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        for pair in ds.ground_truth.iter() {
            let a = ds.collection.get(pair.first);
            let b = ds.collection.get(pair.second);
            assert_eq!(a.token_set(), b.token_set(), "{} vs {}", a.id, b.id);
        }
    }
}
