//! Vocabularies for the synthetic domains.
//!
//! Small, fixed word pools: entities are assembled by seeded sampling, so
//! token overlap between distinct entities is non-trivial (as in real
//! product catalogues, where brand and category words repeat everywhere)
//! while model numbers keep entities distinguishable.

pub const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "apple",
    "canon",
    "nikon",
    "bose",
    "dell",
    "lenovo",
    "panasonic",
    "philips",
    "jbl",
    "logitech",
    "asus",
    "acer",
    "garmin",
    "sandisk",
    "toshiba",
    "epson",
    "brother",
    "dyson",
];

pub const PRODUCT_TYPES: &[&str] = &[
    "television",
    "laptop",
    "camera",
    "headphones",
    "speaker",
    "printer",
    "monitor",
    "router",
    "keyboard",
    "mouse",
    "tablet",
    "smartphone",
    "projector",
    "microwave",
    "blender",
    "vacuum",
    "drive",
    "charger",
    "soundbar",
    "watch",
];

pub const ADJECTIVES: &[&str] = &[
    "wireless",
    "portable",
    "compact",
    "digital",
    "smart",
    "premium",
    "professional",
    "ultra",
    "slim",
    "gaming",
    "bluetooth",
    "rechargeable",
    "waterproof",
    "ergonomic",
    "hd",
    "noise",
    "cancelling",
    "stereo",
    "led",
    "curved",
];

pub const COLORS: &[&str] = &[
    "black", "white", "silver", "red", "blue", "gray", "gold", "green",
];

/// Screen/product sizes, also used as the integer part of price points so
/// that schema-agnostic blocking suffers number collisions between
/// descriptions and prices (as in real catalogues) — the collisions the
/// loose schema removes.
pub const SIZES: &[&str] = &[
    "13", "15", "19", "24", "32", "40", "43", "50", "55", "65", "75",
];

/// Technical spec tokens appearing in descriptions.
pub const SPECS: &[&str] = &[
    "1080p", "4k", "720p", "8gb", "16gb", "64gb", "256gb", "60hz", "120hz", "wifi6",
];

/// Retail price points (few distinct values — prices are a low-entropy
/// attribute, unlike names). Integer parts collide with [`SIZES`].
pub const PRICE_POINTS: &[&str] = &[
    "13.99", "15.99", "19.99", "24.99", "32.99", "40.99", "43.99", "50.99", "55.99", "65.99",
    "75.99", "99.99", "149.99", "199.99", "299.99", "499.99",
];

pub const DESCRIPTION_FILLER: &[&str] = &[
    "features",
    "includes",
    "designed",
    "quality",
    "performance",
    "battery",
    "display",
    "warranty",
    "lightweight",
    "powerful",
    "storage",
    "connectivity",
    "resolution",
    "adjustable",
    "control",
    "remote",
    "system",
    "technology",
    "energy",
    "efficient",
    "audio",
    "video",
    "usb",
    "wifi",
];

pub const SURNAMES: &[&str] = &[
    "simonini",
    "gagliardelli",
    "beneventano",
    "bergamaschi",
    "papadakis",
    "palpanas",
    "chen",
    "kumar",
    "garcia",
    "mueller",
    "tanaka",
    "rossi",
    "novak",
    "silva",
    "jones",
    "nguyen",
    "hansen",
    "kowalski",
    "dubois",
    "martin",
    "lopez",
    "kim",
    "patel",
    "ivanov",
];

pub const TOPIC_WORDS: &[&str] = &[
    "entity",
    "resolution",
    "blocking",
    "distributed",
    "parallel",
    "query",
    "optimization",
    "learning",
    "graph",
    "stream",
    "index",
    "schema",
    "integration",
    "matching",
    "clustering",
    "database",
    "scalable",
    "approximate",
    "semantic",
    "knowledge",
    "neural",
    "transaction",
    "storage",
    "privacy",
    "crowdsourcing",
    "provenance",
    "workflow",
    "benchmark",
];

pub const VENUES: &[&str] = &[
    "vldb", "sigmod", "icde", "edbt", "cikm", "kdd", "www", "tkde", "pods", "cidr",
];

pub const MOVIE_WORDS: &[&str] = &[
    "shadow",
    "night",
    "return",
    "legend",
    "last",
    "dark",
    "city",
    "dream",
    "lost",
    "king",
    "summer",
    "winter",
    "secret",
    "broken",
    "silent",
    "golden",
    "midnight",
    "forgotten",
    "rising",
    "falling",
    "crimson",
    "hidden",
    "eternal",
    "savage",
    "electric",
];

pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "action",
    "documentary",
    "horror",
    "romance",
    "scifi",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_are_nonempty_and_lowercase() {
        for pool in [
            BRANDS,
            PRODUCT_TYPES,
            ADJECTIVES,
            COLORS,
            DESCRIPTION_FILLER,
            SURNAMES,
            TOPIC_WORDS,
            VENUES,
            MOVIE_WORDS,
            GENRES,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "{w} must be lowercase");
                assert!(!w.contains(' '), "{w} must be a single token");
            }
        }
    }

    #[test]
    fn no_duplicates_within_pools() {
        for pool in [
            BRANDS,
            PRODUCT_TYPES,
            SURNAMES,
            TOPIC_WORDS,
            SIZES,
            SPECS,
            PRICE_POINTS,
        ] {
            let set: std::collections::HashSet<&&str> = pool.iter().collect();
            assert_eq!(set.len(), pool.len());
        }
    }
}
