//! The similarity graph: weighted matching pairs.

use sparker_profiles::{Pair, ProfileId};
use std::collections::HashMap;

/// The matcher's output — "matching pairs of similar profiles with their
/// similarity score (similarity graph)". Nodes are profiles, edges the
/// retained pairs; the entity clusterer partitions it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimilarityGraph {
    edges: Vec<(Pair, f64)>,
}

impl SimilarityGraph {
    /// Build from weighted pairs; duplicate pairs keep their maximum score.
    /// Edges are stored sorted by pair, so equal graphs compare equal.
    pub fn new(edges: impl IntoIterator<Item = (Pair, f64)>) -> Self {
        let mut best: HashMap<Pair, f64> = HashMap::new();
        for (p, s) in edges {
            assert!(!s.is_nan(), "similarity scores must not be NaN");
            let e = best.entry(p).or_insert(f64::NEG_INFINITY);
            *e = e.max(s);
        }
        let mut edges: Vec<(Pair, f64)> = best.into_iter().collect();
        edges.sort_by_key(|(a, _)| *a);
        SimilarityGraph { edges }
    }

    /// Assemble from slot-ordered shards whose concatenation is already
    /// sorted by pair with no duplicates — the shape the pool-parallel
    /// matcher produces (contiguous id cuts, per-node sorted emission).
    ///
    /// Skips [`SimilarityGraph::new`]'s hash-dedup and sort; the required
    /// invariants (strictly ascending pairs, no NaN scores) are asserted in
    /// one cheap pass, so a malformed shard set panics instead of silently
    /// corrupting the graph.
    pub fn from_sorted_shards(shards: Vec<Vec<(Pair, f64)>>) -> Self {
        let mut edges: Vec<(Pair, f64)> = Vec::with_capacity(shards.iter().map(Vec::len).sum());
        for shard in shards {
            edges.extend(shard);
        }
        for w in edges.windows(2) {
            assert!(w[0].0 < w[1].0, "shards must concatenate strictly sorted");
        }
        assert!(
            edges.iter().all(|(_, s)| !s.is_nan()),
            "similarity scores must not be NaN"
        );
        SimilarityGraph { edges }
    }

    /// All edges, sorted by pair.
    pub fn edges(&self) -> &[(Pair, f64)] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Keep only edges with `score ≥ threshold`.
    pub fn filter_threshold(&self, threshold: f64) -> SimilarityGraph {
        SimilarityGraph {
            edges: self
                .edges
                .iter()
                .filter(|(_, s)| *s >= threshold)
                .cloned()
                .collect(),
        }
    }

    /// The score of a pair, if the edge exists.
    pub fn score_of(&self, pair: &Pair) -> Option<f64> {
        self.edges
            .binary_search_by(|(p, _)| p.cmp(pair))
            .ok()
            .map(|i| self.edges[i].1)
    }

    /// Neighbors of a profile with scores.
    pub fn neighbors(&self, id: ProfileId) -> Vec<(ProfileId, f64)> {
        self.edges
            .iter()
            .filter_map(|(p, s)| p.other(id).map(|o| (o, *s)))
            .collect()
    }

    /// Just the pairs, sorted.
    pub fn pairs(&self) -> Vec<Pair> {
        self.edges.iter().map(|(p, _)| *p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn duplicate_edges_keep_max_score() {
        let g = SimilarityGraph::new(vec![(pair(0, 1), 0.4), (pair(1, 0), 0.7)]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.score_of(&pair(0, 1)), Some(0.7));
    }

    #[test]
    fn threshold_filtering() {
        let g = SimilarityGraph::new(vec![(pair(0, 1), 0.9), (pair(1, 2), 0.3)]);
        let f = g.filter_threshold(0.5);
        assert_eq!(f.len(), 1);
        assert_eq!(f.pairs(), vec![pair(0, 1)]);
        assert!(g.filter_threshold(0.95).is_empty());
    }

    #[test]
    fn neighbors_lookup() {
        let g = SimilarityGraph::new(vec![(pair(0, 1), 0.9), (pair(1, 2), 0.3)]);
        let n = g.neighbors(ProfileId(1));
        assert_eq!(n, vec![(ProfileId(0), 0.9), (ProfileId(2), 0.3)]);
        assert!(g.neighbors(ProfileId(9)).is_empty());
        assert_eq!(g.score_of(&pair(0, 2)), None);
    }

    #[test]
    fn equal_graphs_compare_equal_regardless_of_input_order() {
        let a = SimilarityGraph::new(vec![(pair(0, 1), 0.5), (pair(2, 3), 0.6)]);
        let b = SimilarityGraph::new(vec![(pair(2, 3), 0.6), (pair(0, 1), 0.5)]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        SimilarityGraph::new(vec![(pair(0, 1), f64::NAN)]);
    }

    #[test]
    fn sorted_shards_assemble_without_resorting() {
        let shards = vec![
            vec![(pair(0, 1), 0.9), (pair(0, 2), 0.4)],
            vec![],
            vec![(pair(1, 2), 0.7), (pair(2, 3), 0.5)],
        ];
        let g = SimilarityGraph::from_sorted_shards(shards);
        let same = SimilarityGraph::new(vec![
            (pair(2, 3), 0.5),
            (pair(0, 1), 0.9),
            (pair(1, 2), 0.7),
            (pair(0, 2), 0.4),
        ]);
        assert_eq!(g, same);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_shards_rejected() {
        SimilarityGraph::from_sorted_shards(vec![vec![(pair(1, 2), 0.7)], vec![(pair(0, 1), 0.9)]]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn duplicate_across_shards_rejected() {
        SimilarityGraph::from_sorted_shards(vec![vec![(pair(0, 1), 0.7)], vec![(pair(0, 1), 0.9)]]);
    }
}
