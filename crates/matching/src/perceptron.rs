//! A trainable linear matcher over similarity features — the supervised
//! mode of the entity matcher.
//!
//! The paper's supervised mode assumes labelled pairs ("labeled data to
//! train classification algorithms"); Magellan, the matcher shown in the
//! demo, trains classifiers on such labels. This logistic-regression
//! matcher is the minimal faithful stand-in: features are the crate's
//! similarity measures evaluated on the pair, trained with seeded SGD, so
//! results are reproducible.

use crate::matcher::Matcher;
use crate::similarity;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparker_profiles::{Pair, Profile, ProfileCollection};

/// Names of the features produced by [`pair_features`], index-aligned.
pub const FEATURE_NAMES: [&str; 6] = [
    "jaccard",
    "dice",
    "cosine",
    "levenshtein",
    "jaro-winkler",
    "monge-elkan",
];

/// The feature vector of a candidate pair: each similarity measure applied
/// to the two profiles.
pub fn pair_features(a: &Profile, b: &Profile) -> [f64; 6] {
    let (ta, tb) = (a.token_set(), b.token_set());
    let (ca, cb) = (a.concatenated_values(), b.concatenated_values());
    [
        similarity::jaccard(&ta, &tb),
        similarity::dice(&ta, &tb),
        similarity::cosine_tokens(&ta, &tb),
        similarity::levenshtein_similarity(&ca, &cb),
        similarity::jaro_winkler(&ca, &cb),
        similarity::monge_elkan(&ca, &cb),
    ]
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Full passes over the labelled pairs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Shuffling seed (training is fully deterministic given it).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            learning_rate: 0.5,
            seed: 42,
        }
    }
}

/// Logistic-regression matcher over [`pair_features`].
#[derive(Debug, Clone)]
pub struct PerceptronMatcher {
    weights: [f64; 6],
    bias: f64,
    threshold: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl PerceptronMatcher {
    /// Train on labelled pairs (`true` = match). Panics when either class
    /// is absent — a matcher trained on one class would degenerate to a
    /// constant.
    pub fn train(
        collection: &ProfileCollection,
        labelled: &[(Pair, bool)],
        config: &TrainConfig,
    ) -> Self {
        assert!(
            labelled.iter().any(|(_, y)| *y) && labelled.iter().any(|(_, y)| !*y),
            "training set must contain both matches and non-matches"
        );
        let examples: Vec<([f64; 6], f64)> = labelled
            .iter()
            .map(|(pair, y)| {
                let f = pair_features(collection.get(pair.first), collection.get(pair.second));
                (f, if *y { 1.0 } else { 0.0 })
            })
            .collect();

        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut weights = [0.0f64; 6];
        let mut bias = 0.0f64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (f, y) = &examples[i];
                let z = weights.iter().zip(f).map(|(w, x)| w * x).sum::<f64>() + bias;
                let err = y - sigmoid(z);
                for (w, x) in weights.iter_mut().zip(f) {
                    *w += config.learning_rate * err * x;
                }
                bias += config.learning_rate * err;
            }
        }
        PerceptronMatcher {
            weights,
            bias,
            threshold: 0.5,
        }
    }

    /// Match probability of a pair (sigmoid of the linear score).
    pub fn predict_proba(&self, a: &Profile, b: &Profile) -> f64 {
        let f = pair_features(a, b);
        sigmoid(self.weights.iter().zip(&f).map(|(w, x)| w * x).sum::<f64>() + self.bias)
    }

    /// Learned feature weights, index-aligned with [`FEATURE_NAMES`].
    pub fn weights(&self) -> &[f64; 6] {
        &self.weights
    }

    /// Override the decision threshold (default 0.5 probability).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        self.threshold = threshold;
        self
    }
}

impl Matcher for PerceptronMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.predict_proba(a, b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{ProfileId, SourceId};

    /// A small collection with clear duplicates and clear non-matches.
    fn training_world() -> (ProfileCollection, Vec<(Pair, bool)>) {
        let names = [
            "sony bravia kdl40 led tv",
            "canon eos 5d camera body",
            "apple macbook pro 13 laptop",
            "bose quietcomfort 35 headphones",
            "dell xps 13 ultrabook laptop",
            "nikon d750 dslr camera",
        ];
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        for (i, n) in names.iter().enumerate() {
            s0.push(
                Profile::builder(SourceId(0), format!("a{i}"))
                    .attr("name", *n)
                    .build(),
            );
            // Duplicate with small perturbation.
            s1.push(
                Profile::builder(SourceId(1), format!("b{i}"))
                    .attr("title", format!("{} new", n.to_uppercase()))
                    .build(),
            );
        }
        let coll = ProfileCollection::clean_clean(s0, s1);
        let n = names.len() as u32;
        let mut labelled = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let pair = Pair::new(ProfileId(i), ProfileId(n + j));
                labelled.push((pair, i == j));
            }
        }
        (coll, labelled)
    }

    #[test]
    fn learns_to_separate_matches() {
        let (coll, labelled) = training_world();
        let m = PerceptronMatcher::train(&coll, &labelled, &TrainConfig::default());
        let mut correct = 0;
        for (pair, y) in &labelled {
            let p = m.predict_proba(coll.get(pair.first), coll.get(pair.second));
            if (p >= 0.5) == *y {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / labelled.len() as f64;
        assert!(accuracy >= 0.9, "train accuracy {accuracy}");
    }

    #[test]
    fn training_is_deterministic() {
        let (coll, labelled) = training_world();
        let a = PerceptronMatcher::train(&coll, &labelled, &TrainConfig::default());
        let b = PerceptronMatcher::train(&coll, &labelled, &TrainConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn similarity_features_get_positive_weight_mass() {
        let (coll, labelled) = training_world();
        let m = PerceptronMatcher::train(&coll, &labelled, &TrainConfig::default());
        let total: f64 = m.weights().iter().sum();
        assert!(total > 0.0, "weights {:?}", m.weights());
    }

    #[test]
    fn works_as_matcher() {
        let (coll, labelled) = training_world();
        let m = PerceptronMatcher::train(&coll, &labelled, &TrainConfig::default());
        let candidates: Vec<Pair> = labelled.iter().map(|(p, _)| *p).collect();
        let g = m.match_pairs(&coll, candidates);
        let truth: Vec<Pair> = labelled
            .iter()
            .filter(|(_, y)| *y)
            .map(|(p, _)| *p)
            .collect();
        let found = truth.iter().filter(|p| g.score_of(p).is_some()).count();
        assert!(found >= 5, "recovered {found}/6 duplicates");
    }

    #[test]
    #[should_panic(expected = "both matches and non-matches")]
    fn one_class_training_rejected() {
        let (coll, labelled) = training_world();
        let only_pos: Vec<(Pair, bool)> = labelled.into_iter().filter(|(_, y)| *y).collect();
        PerceptronMatcher::train(&coll, &only_pos, &TrainConfig::default());
    }

    #[test]
    fn feature_vector_shape() {
        let (coll, _) = training_world();
        let f = pair_features(coll.get(ProfileId(0)), coll.get(ProfileId(6)));
        assert_eq!(f.len(), FEATURE_NAMES.len());
        assert!(f.iter().all(|x| (0.0..=1.0).contains(x)));
    }
}
