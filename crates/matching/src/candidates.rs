//! Candidate graph: the pruned blocking graph's edges in CSR form, plus the
//! pool-parallel batch scorer that streams them to a matcher.
//!
//! The blocker hands the matcher a *set* of candidate pairs. The dataflow
//! matcher used to materialize that set as one global sorted `Vec<Pair>`
//! before distributing it; at scale the sort and the copy are pure
//! overhead, and equal-count pair partitions inherit the blocking graph's
//! skew (a hub profile's pairs land contiguously). [`CandidateGraph`]
//! instead lays the pairs out as per-profile neighbor lists — six-machine-
//! word CSR, built by counting sort — so the scorer streams each profile's
//! candidates out of its neighborhood, costs are per-profile degrees, and
//! no global pair vector ever exists.
//!
//! [`score_candidates_pool`] is the execution half: profile ids are
//! partitioned by candidate-degree cost hints (`parallelize_by_cost`),
//! executed as dynamically claimed morsels with per-worker scratch
//! ([`WorkerLocal`]), and each morsel emits a sorted [`SimilarityGraph`]
//! shard. Contiguous id cuts + slot-indexed shard merge make the
//! concatenation globally sorted, so the result is byte-identical to the
//! sequential matcher at any worker count.

use crate::graph::SimilarityGraph;
use sparker_dataflow::{Broadcast, Context, WorkerLocal};
use sparker_profiles::{Pair, ProfileId};
use std::sync::Arc;

/// The candidate pairs of a pruned blocking graph in CSR form: each pair is
/// stored once, under its smaller endpoint, with neighbor lists sorted by
/// id. Layout is a pure function of the pair *set* — building from any
/// iteration order (e.g. a `HashSet`) yields identical bytes.
#[derive(Debug, Clone)]
pub struct CandidateGraph {
    /// `offsets[i]..offsets[i + 1]` bounds profile `i`'s neighbor run.
    offsets: Vec<usize>,
    /// Larger endpoints, sorted ascending within each profile's run.
    neighbors: Vec<ProfileId>,
}

impl CandidateGraph {
    /// Build from candidate pairs by counting sort. The iterator is walked
    /// twice (count, then fill), which is why it must be `Clone` — pass
    /// `set.iter().copied()` style borrows, not owned buffers.
    pub fn from_pairs<I>(num_profiles: usize, pairs: I) -> Self
    where
        I: Iterator<Item = Pair> + Clone,
    {
        let mut offsets = vec![0usize; num_profiles + 1];
        for p in pairs.clone() {
            assert!(
                p.second.index() < num_profiles,
                "candidate {p} out of range for {num_profiles} profiles"
            );
            offsets[p.first.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![ProfileId(0); offsets[num_profiles]];
        for p in pairs {
            neighbors[cursor[p.first.index()]] = p.second;
            cursor[p.first.index()] += 1;
        }
        // Neighbor runs sorted by id: emission order becomes globally
        // sorted, independent of the input iteration order.
        for i in 0..num_profiles {
            neighbors[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        CandidateGraph { offsets, neighbors }
    }

    /// Number of profiles (nodes).
    pub fn num_profiles(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of candidate pairs (edges).
    pub fn num_candidates(&self) -> usize {
        self.neighbors.len()
    }

    /// The candidates stored under `id` (their larger endpoints), sorted.
    pub fn candidates_of(&self, id: ProfileId) -> &[ProfileId] {
        &self.neighbors[self.offsets[id.index()]..self.offsets[id.index() + 1]]
    }

    /// Per-profile scheduling cost: stored candidate degree + 1 (the +1
    /// keeps isolated profiles advancing the cost prefix, as in the
    /// meta-blocking scheduler).
    pub fn costs(&self) -> Vec<u64> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u64 + 1)
            .collect()
    }
}

/// Morsel grain shared with the meta-blocking scheduler: roughly
/// `32 × workers` claimable tasks overall.
fn morsel_grain(num_nodes: usize, ctx: &Context) -> usize {
    (num_nodes / (ctx.workers() * 32)).max(1)
}

/// Decide every candidate of `graph` on the worker pool: `decide(scratch,
/// a, b)` returns `Some(score)` for pairs to retain — the seam the
/// filter–verify cascade plugs into (a pair can be rejected without ever
/// computing its score).
///
/// `locals` holds one per-worker-slot scratch value (reused across
/// morsels); the caller keeps the `Arc` and can drain per-slot state (e.g.
/// filter statistics) after the run, when the pool's clone has been
/// dropped. `decide` must be a pure function of the pair for the
/// determinism guarantee to hold. Profile ids are cost-partitioned by
/// candidate degree and executed as dynamically claimed morsels; each
/// morsel's sorted shard is merged slot-indexed, so the output equals the
/// sequential scorer's bytes at any worker count.
pub fn filter_candidates_pool<W, F>(
    ctx: &Context,
    graph: &Arc<CandidateGraph>,
    locals: &Arc<WorkerLocal<W>>,
    decide: F,
) -> SimilarityGraph
where
    W: Send,
    F: Fn(&mut W, ProfileId, ProfileId) -> Option<f64> + Send + Sync,
{
    let num_nodes = graph.num_profiles();
    let costs = graph.costs();
    let grain = morsel_grain(num_nodes, ctx);
    let b_graph: Broadcast<CandidateGraph> = ctx.broadcast(Arc::clone(graph));
    let locals = Arc::clone(locals);
    let ids: Vec<u32> = (0..num_nodes as u32).collect();
    let shards = ctx
        .parallelize_by_cost_default(ids, &costs)
        .map_morsels_named("match_candidates", grain, move |worker, nodes| {
            locals.with(worker, |scr| {
                let mut shard = Vec::new();
                for &i in nodes {
                    let node = ProfileId(i);
                    for &j in b_graph.candidates_of(node) {
                        if let Some(s) = decide(scr, node, j) {
                            shard.push((Pair::new(node, j), s));
                        }
                    }
                }
                shard
            })
        });
    SimilarityGraph::from_sorted_shards(shards.into_partitions())
}

/// Score every candidate of `graph` on the worker pool and keep pairs with
/// `score ≥ threshold`.
///
/// `scratch` builds one per-worker-slot value (reused across morsels —
/// e.g. [`crate::similarity::EditScratch`] for edit-based measures). A thin
/// wrapper over [`filter_candidates_pool`] with the threshold folded into
/// the decision; same determinism contract.
pub fn score_candidates_pool<W, F>(
    ctx: &Context,
    graph: &Arc<CandidateGraph>,
    threshold: f64,
    scratch: impl FnMut() -> W,
    score: F,
) -> SimilarityGraph
where
    W: Send,
    F: Fn(&mut W, ProfileId, ProfileId) -> f64 + Send + Sync,
{
    let locals = Arc::new(WorkerLocal::new(ctx.workers(), scratch));
    filter_candidates_pool(ctx, graph, &locals, move |scr, a, b| {
        let s = score(scr, a, b);
        (s >= threshold).then_some(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn csr_layout_independent_of_input_order() {
        let fwd = [pair(0, 3), pair(0, 1), pair(2, 3), pair(1, 4)];
        let mut rev = fwd;
        rev.reverse();
        let a = CandidateGraph::from_pairs(5, fwd.iter().copied());
        let b = CandidateGraph::from_pairs(5, rev.iter().copied());
        assert_eq!(a.candidates_of(ProfileId(0)), &[ProfileId(1), ProfileId(3)]);
        assert_eq!(a.candidates_of(ProfileId(3)), &[] as &[ProfileId]);
        for i in 0..5 {
            assert_eq!(a.candidates_of(ProfileId(i)), b.candidates_of(ProfileId(i)));
        }
        assert_eq!(a.num_candidates(), 4);
        assert_eq!(a.num_profiles(), 5);
    }

    #[test]
    fn costs_are_degree_plus_one() {
        let g = CandidateGraph::from_pairs(4, [pair(0, 1), pair(0, 2), pair(1, 3)].into_iter());
        assert_eq!(g.costs(), vec![3, 2, 1, 1]);
    }

    #[test]
    fn from_hashset_iteration_is_deterministic() {
        let set: HashSet<Pair> = (0..20u32)
            .flat_map(|a| (a + 1..20).map(move |b| pair(a, b)))
            .collect();
        let a = CandidateGraph::from_pairs(20, set.iter().copied());
        let b = CandidateGraph::from_pairs(20, set.iter().copied());
        for i in 0..20 {
            assert_eq!(a.candidates_of(ProfileId(i)), b.candidates_of(ProfileId(i)));
        }
        assert_eq!(a.num_candidates(), 190);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_candidate_rejected() {
        CandidateGraph::from_pairs(3, [pair(0, 7)].into_iter());
    }

    #[test]
    fn pool_scorer_equals_sequential_filtering() {
        let pairs = [pair(0, 1), pair(0, 2), pair(1, 2), pair(2, 3)];
        let g = Arc::new(CandidateGraph::from_pairs(4, pairs.iter().copied()));
        // Deterministic synthetic score: depends only on the pair.
        let score = |a: ProfileId, b: ProfileId| f64::from(a.0 + b.0) / 10.0;
        let expected = SimilarityGraph::new(
            pairs
                .iter()
                .filter_map(|p| {
                    let s = score(p.first, p.second);
                    (s >= 0.3).then_some((*p, s))
                })
                .collect::<Vec<_>>(),
        );
        for workers in [1, 2, 8] {
            let ctx = Context::new(workers);
            let got = score_candidates_pool(&ctx, &g, 0.3, || (), move |_, a, b| score(a, b));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn pool_scorer_empty_graph() {
        let g = Arc::new(CandidateGraph::from_pairs(3, std::iter::empty()));
        let ctx = Context::new(2);
        let out = score_candidates_pool(&ctx, &g, 0.5, || (), |_: &mut (), _, _| 1.0);
        assert!(out.is_empty());
    }
}
