//! Candidate graph: the pruned blocking graph's edges in CSR form, plus the
//! pool-parallel batch scorer that streams them to a matcher.
//!
//! The blocker hands the matcher a *set* of candidate pairs. The dataflow
//! matcher used to materialize that set as one global sorted `Vec<Pair>`
//! before distributing it; at scale the sort and the copy are pure
//! overhead, and equal-count pair partitions inherit the blocking graph's
//! skew (a hub profile's pairs land contiguously). [`CandidateGraph`]
//! instead lays the pairs out as per-profile neighbor lists — six-machine-
//! word CSR, built by counting sort — so the scorer streams each profile's
//! candidates out of its neighborhood, costs are per-profile degrees, and
//! no global pair vector ever exists.
//!
//! [`score_candidates_pool`] is the execution half: profile ids are
//! partitioned by candidate-degree cost hints (`parallelize_by_cost`),
//! executed as dynamically claimed morsels with per-worker scratch
//! ([`WorkerLocal`]), and each morsel emits a sorted [`SimilarityGraph`]
//! shard. Contiguous id cuts + slot-indexed shard merge make the
//! concatenation globally sorted, so the result is byte-identical to the
//! sequential matcher at any worker count.

use crate::graph::SimilarityGraph;
use sparker_dataflow::{Broadcast, Context, MemBudget, RunCursor, SpillRun, WorkerLocal};
use sparker_profiles::{Pair, ProfileId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The candidate pairs of a pruned blocking graph in CSR form: each pair is
/// stored once, under its smaller endpoint, with neighbor lists sorted by
/// id. Layout is a pure function of the pair *set* — building from any
/// iteration order (e.g. a `HashSet`) yields identical bytes.
#[derive(Debug, Clone)]
pub struct CandidateGraph {
    /// `offsets[i]..offsets[i + 1]` bounds profile `i`'s neighbor run.
    offsets: Vec<usize>,
    /// Larger endpoints, sorted ascending within each profile's run.
    neighbors: Vec<ProfileId>,
}

impl CandidateGraph {
    /// Build from candidate pairs by counting sort. The iterator is walked
    /// twice (count, then fill), which is why it must be `Clone` — pass
    /// `set.iter().copied()` style borrows, not owned buffers.
    pub fn from_pairs<I>(num_profiles: usize, pairs: I) -> Self
    where
        I: Iterator<Item = Pair> + Clone,
    {
        let mut offsets = vec![0usize; num_profiles + 1];
        for p in pairs.clone() {
            assert!(
                p.second.index() < num_profiles,
                "candidate {p} out of range for {num_profiles} profiles"
            );
            offsets[p.first.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![ProfileId(0); offsets[num_profiles]];
        for p in pairs {
            neighbors[cursor[p.first.index()]] = p.second;
            cursor[p.first.index()] += 1;
        }
        // Neighbor runs sorted by id: emission order becomes globally
        // sorted, independent of the input iteration order.
        for i in 0..num_profiles {
            neighbors[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        CandidateGraph { offsets, neighbors }
    }

    /// Build from candidate pairs under a memory budget by external sort:
    /// pairs stream into a bounded buffer; full buffers are sorted and
    /// spilled as [`SpillRun`]s, then k-way merged back. The merged stream
    /// is globally sorted by `(first, second)`, so the CSR arrays fill in
    /// one pass with no per-profile sort — bit-identical to
    /// [`CandidateGraph::from_pairs`] (pinned by proptest). With an
    /// unlimited budget everything stays in RAM as a single sorted run.
    pub fn from_pairs_budgeted<I>(num_profiles: usize, pairs: I, budget: &MemBudget) -> Self
    where
        I: Iterator<Item = Pair>,
    {
        let run_len = if budget.is_limited() {
            budget.chunk_len(usize::MAX, std::mem::size_of::<Pair>())
        } else {
            usize::MAX
        };
        Self::from_pairs_external(num_profiles, pairs, budget, run_len)
    }

    /// External-sort body of [`CandidateGraph::from_pairs_budgeted`] with
    /// an explicit in-RAM run length (tests force tiny runs through it).
    fn from_pairs_external<I>(
        num_profiles: usize,
        pairs: I,
        budget: &MemBudget,
        run_len: usize,
    ) -> Self
    where
        I: Iterator<Item = Pair>,
    {
        let run_len = run_len.max(1);
        let mut buf: Vec<Pair> = Vec::new();
        let mut runs: Vec<SpillRun> = Vec::new();
        for p in pairs {
            assert!(
                p.second.index() < num_profiles,
                "candidate {p} out of range for {num_profiles} profiles"
            );
            buf.push(p);
            if buf.len() >= run_len {
                buf.sort_unstable();
                runs.push(SpillRun::write(budget, &buf).expect("spill candidate run"));
                buf.clear();
            }
        }
        buf.sort_unstable();

        let mut offsets = vec![0usize; num_profiles + 1];
        let mut neighbors: Vec<ProfileId> = Vec::new();
        if runs.is_empty() {
            neighbors.reserve(buf.len());
            for p in &buf {
                offsets[p.first.index() + 1] += 1;
                neighbors.push(p.second);
            }
        } else {
            if !buf.is_empty() {
                runs.push(SpillRun::write(budget, &buf).expect("spill candidate run"));
                drop(std::mem::take(&mut buf));
            }
            let mut cursors: Vec<RunCursor<Pair>> = runs
                .iter()
                .map(|r| r.cursor().expect("open candidate run"))
                .collect();
            // Merge heap keyed by (pair, run index); equal pairs are
            // identical records, so the tie-break never changes the output.
            let mut heap: BinaryHeap<Reverse<(Pair, usize)>> = BinaryHeap::new();
            for (i, c) in cursors.iter_mut().enumerate() {
                if let Some(p) = c.next_record().expect("read candidate run") {
                    heap.push(Reverse((p, i)));
                }
            }
            while let Some(Reverse((p, i))) = heap.pop() {
                offsets[p.first.index() + 1] += 1;
                neighbors.push(p.second);
                if let Some(next) = cursors[i].next_record().expect("read candidate run") {
                    heap.push(Reverse((next, i)));
                }
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        CandidateGraph { offsets, neighbors }
    }

    /// Number of profiles (nodes).
    pub fn num_profiles(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of candidate pairs (edges).
    pub fn num_candidates(&self) -> usize {
        self.neighbors.len()
    }

    /// The candidates stored under `id` (their larger endpoints), sorted.
    pub fn candidates_of(&self, id: ProfileId) -> &[ProfileId] {
        &self.neighbors[self.offsets[id.index()]..self.offsets[id.index() + 1]]
    }

    /// Per-profile scheduling cost: stored candidate degree + 1 (the +1
    /// keeps isolated profiles advancing the cost prefix, as in the
    /// meta-blocking scheduler).
    pub fn costs(&self) -> Vec<u64> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u64 + 1)
            .collect()
    }
}

/// Morsel grain shared with the meta-blocking scheduler: roughly
/// `32 × workers` claimable tasks overall.
fn morsel_grain(num_nodes: usize, ctx: &Context) -> usize {
    (num_nodes / (ctx.workers() * 32)).max(1)
}

/// Decide every candidate of `graph` on the worker pool: `decide(scratch,
/// a, b)` returns `Some(score)` for pairs to retain — the seam the
/// filter–verify cascade plugs into (a pair can be rejected without ever
/// computing its score).
///
/// `locals` holds one per-worker-slot scratch value (reused across
/// morsels); the caller keeps the `Arc` and can drain per-slot state (e.g.
/// filter statistics) after the run, when the pool's clone has been
/// dropped. `decide` must be a pure function of the pair for the
/// determinism guarantee to hold. Profile ids are cost-partitioned by
/// candidate degree and executed as dynamically claimed morsels; each
/// morsel's sorted shard is merged slot-indexed, so the output equals the
/// sequential scorer's bytes at any worker count.
pub fn filter_candidates_pool<W, F>(
    ctx: &Context,
    graph: &Arc<CandidateGraph>,
    locals: &Arc<WorkerLocal<W>>,
    decide: F,
) -> SimilarityGraph
where
    W: Send,
    F: Fn(&mut W, ProfileId, ProfileId) -> Option<f64> + Send + Sync,
{
    let num_nodes = graph.num_profiles();
    let costs = graph.costs();
    let grain = morsel_grain(num_nodes, ctx);
    let b_graph: Broadcast<CandidateGraph> = ctx.broadcast(Arc::clone(graph));
    let locals = Arc::clone(locals);
    let ids: Vec<u32> = (0..num_nodes as u32).collect();
    let shards = ctx
        .parallelize_by_cost_default(ids, &costs)
        .map_morsels_named("match_candidates", grain, move |worker, nodes| {
            locals.with(worker, |scr| {
                let mut shard = Vec::new();
                for &i in nodes {
                    let node = ProfileId(i);
                    for &j in b_graph.candidates_of(node) {
                        if let Some(s) = decide(scr, node, j) {
                            shard.push((Pair::new(node, j), s));
                        }
                    }
                }
                shard
            })
        });
    SimilarityGraph::from_sorted_shards(shards.into_partitions())
}

/// Score every candidate of `graph` on the worker pool and keep pairs with
/// `score ≥ threshold`.
///
/// `scratch` builds one per-worker-slot value (reused across morsels —
/// e.g. [`crate::similarity::EditScratch`] for edit-based measures). A thin
/// wrapper over [`filter_candidates_pool`] with the threshold folded into
/// the decision; same determinism contract.
pub fn score_candidates_pool<W, F>(
    ctx: &Context,
    graph: &Arc<CandidateGraph>,
    threshold: f64,
    scratch: impl FnMut() -> W,
    score: F,
) -> SimilarityGraph
where
    W: Send,
    F: Fn(&mut W, ProfileId, ProfileId) -> f64 + Send + Sync,
{
    let locals = Arc::new(WorkerLocal::new(ctx.workers(), scratch));
    filter_candidates_pool(ctx, graph, &locals, move |scr, a, b| {
        let s = score(scr, a, b);
        (s >= threshold).then_some(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn csr_layout_independent_of_input_order() {
        let fwd = [pair(0, 3), pair(0, 1), pair(2, 3), pair(1, 4)];
        let mut rev = fwd;
        rev.reverse();
        let a = CandidateGraph::from_pairs(5, fwd.iter().copied());
        let b = CandidateGraph::from_pairs(5, rev.iter().copied());
        assert_eq!(a.candidates_of(ProfileId(0)), &[ProfileId(1), ProfileId(3)]);
        assert_eq!(a.candidates_of(ProfileId(3)), &[] as &[ProfileId]);
        for i in 0..5 {
            assert_eq!(a.candidates_of(ProfileId(i)), b.candidates_of(ProfileId(i)));
        }
        assert_eq!(a.num_candidates(), 4);
        assert_eq!(a.num_profiles(), 5);
    }

    #[test]
    fn costs_are_degree_plus_one() {
        let g = CandidateGraph::from_pairs(4, [pair(0, 1), pair(0, 2), pair(1, 3)].into_iter());
        assert_eq!(g.costs(), vec![3, 2, 1, 1]);
    }

    #[test]
    fn from_hashset_iteration_is_deterministic() {
        let set: HashSet<Pair> = (0..20u32)
            .flat_map(|a| (a + 1..20).map(move |b| pair(a, b)))
            .collect();
        let a = CandidateGraph::from_pairs(20, set.iter().copied());
        let b = CandidateGraph::from_pairs(20, set.iter().copied());
        for i in 0..20 {
            assert_eq!(a.candidates_of(ProfileId(i)), b.candidates_of(ProfileId(i)));
        }
        assert_eq!(a.num_candidates(), 190);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_candidate_rejected() {
        CandidateGraph::from_pairs(3, [pair(0, 7)].into_iter());
    }

    #[test]
    fn budgeted_build_spills_runs_and_matches_in_ram() {
        // Adversarial order (descending, with duplicates) across a tiny
        // budget: the external sort must spill several runs and still
        // reproduce the in-RAM counting sort bit for bit.
        let mut pairs: Vec<Pair> = (0..60u32)
            .rev()
            .flat_map(|a| {
                (a + 1..60)
                    .rev()
                    .filter(move |b| (a + b) % 3 != 0)
                    .map(move |b| pair(a, b))
            })
            .collect();
        let dup = pairs[5];
        pairs.push(dup);
        let in_ram = CandidateGraph::from_pairs(60, pairs.iter().copied());
        let budget = MemBudget::limited(1);
        for run_len in [1usize, 7, 100, 1 << 20] {
            let spilled =
                CandidateGraph::from_pairs_external(60, pairs.iter().copied(), &budget, run_len);
            assert_eq!(spilled.offsets, in_ram.offsets, "run_len={run_len}");
            assert_eq!(spilled.neighbors, in_ram.neighbors, "run_len={run_len}");
        }
        assert!(budget.spilled_bytes() > 0, "short runs must spill to disk");
        let unlimited =
            CandidateGraph::from_pairs_budgeted(60, pairs.iter().copied(), &MemBudget::unlimited());
        assert_eq!(unlimited.offsets, in_ram.offsets);
        assert_eq!(unlimited.neighbors, in_ram.neighbors);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn budgeted_out_of_range_candidate_rejected() {
        CandidateGraph::from_pairs_budgeted(3, [pair(0, 7)].into_iter(), &MemBudget::unlimited());
    }

    #[test]
    fn pool_scorer_equals_sequential_filtering() {
        let pairs = [pair(0, 1), pair(0, 2), pair(1, 2), pair(2, 3)];
        let g = Arc::new(CandidateGraph::from_pairs(4, pairs.iter().copied()));
        // Deterministic synthetic score: depends only on the pair.
        let score = |a: ProfileId, b: ProfileId| f64::from(a.0 + b.0) / 10.0;
        let expected = SimilarityGraph::new(
            pairs
                .iter()
                .filter_map(|p| {
                    let s = score(p.first, p.second);
                    (s >= 0.3).then_some((*p, s))
                })
                .collect::<Vec<_>>(),
        );
        for workers in [1, 2, 8] {
            let ctx = Context::new(workers);
            let got = score_candidates_pool(&ctx, &g, 0.3, || (), move |_, a, b| score(a, b));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn pool_scorer_empty_graph() {
        let g = Arc::new(CandidateGraph::from_pairs(3, std::iter::empty()));
        let ctx = Context::new(2);
        let out = score_candidates_pool(&ctx, &g, 0.5, || (), |_: &mut (), _, _| 1.0);
        assert!(out.is_empty());
    }

    mod budgeted_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_external_sort_equals_counting_sort(
                edges in prop::collection::vec((0u32..30, 0u32..30), 0..200),
                run_len in 1usize..50,
            ) {
                let pairs: Vec<Pair> = edges
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| pair(a, b))
                    .collect();
                let in_ram = CandidateGraph::from_pairs(30, pairs.iter().copied());
                let budget = MemBudget::limited(1);
                let external = CandidateGraph::from_pairs_external(
                    30,
                    pairs.iter().copied(),
                    &budget,
                    run_len,
                );
                prop_assert_eq!(&external.offsets, &in_ram.offsets);
                prop_assert_eq!(&external.neighbors, &in_ram.neighbors);
            }
        }
    }
}
