//! Matchers: turn candidate pairs into a similarity graph.

use crate::candidates::{score_candidates_pool, CandidateGraph};
use crate::graph::SimilarityGraph;
use crate::similarity;
use crate::tfidf::TfIdfIndex;
use sparker_dataflow::Context;
use sparker_profiles::{Pair, Profile, ProfileCollection};
use std::sync::Arc;

/// A whole-profile similarity measure selectable by name — the paper's
/// "wide range of similarity (or distance) scores" the user can pick in the
/// entity-matching step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Jaccard over schema-agnostic token sets.
    Jaccard,
    /// Dice over token sets.
    Dice,
    /// Overlap coefficient over token sets.
    Overlap,
    /// Cosine over binary token vectors.
    CosineTokens,
    /// Normalized Levenshtein similarity of concatenated values.
    Levenshtein,
    /// Jaro–Winkler of concatenated values.
    JaroWinkler,
    /// Monge–Elkan (token-wise best Jaro–Winkler).
    MongeElkan,
}

impl SimilarityMeasure {
    /// All measures, for sweeps.
    pub const ALL: [SimilarityMeasure; 7] = [
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Dice,
        SimilarityMeasure::Overlap,
        SimilarityMeasure::CosineTokens,
        SimilarityMeasure::Levenshtein,
        SimilarityMeasure::JaroWinkler,
        SimilarityMeasure::MongeElkan,
    ];

    /// Human-readable name (stable; used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Jaccard => "jaccard",
            SimilarityMeasure::Dice => "dice",
            SimilarityMeasure::Overlap => "overlap",
            SimilarityMeasure::CosineTokens => "cosine",
            SimilarityMeasure::Levenshtein => "levenshtein",
            SimilarityMeasure::JaroWinkler => "jaro-winkler",
            SimilarityMeasure::MongeElkan => "monge-elkan",
        }
    }

    /// Score two profiles in `[0, 1]`.
    pub fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.score_prepared(&PreparedProfile::new(a), &PreparedProfile::new(b))
    }

    /// Score two [`PreparedProfile`]s — the allocation-free inner loop used
    /// by the batch matchers, which prepare each profile once instead of
    /// re-tokenizing it per candidate pair.
    pub fn score_prepared(&self, a: &PreparedProfile, b: &PreparedProfile) -> f64 {
        match self {
            SimilarityMeasure::Jaccard => similarity::jaccard(&a.tokens, &b.tokens),
            SimilarityMeasure::Dice => similarity::dice(&a.tokens, &b.tokens),
            SimilarityMeasure::Overlap => similarity::overlap(&a.tokens, &b.tokens),
            SimilarityMeasure::CosineTokens => similarity::cosine_tokens(&a.tokens, &b.tokens),
            SimilarityMeasure::Levenshtein => {
                similarity::levenshtein_similarity(&a.concatenated, &b.concatenated)
            }
            SimilarityMeasure::JaroWinkler => {
                similarity::jaro_winkler(&a.concatenated, &b.concatenated)
            }
            SimilarityMeasure::MongeElkan => {
                similarity::monge_elkan(&a.concatenated, &b.concatenated)
            }
        }
    }

    /// [`SimilarityMeasure::score_prepared`] with reusable edit-distance
    /// buffers — identical bits; Levenshtein stops allocating its DP rows
    /// per pair. The batch matchers keep one [`similarity::EditScratch`]
    /// per worker slot.
    pub fn score_prepared_with(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        scratch: &mut similarity::EditScratch,
    ) -> f64 {
        match self {
            SimilarityMeasure::Levenshtein => {
                similarity::levenshtein_similarity_with(&a.concatenated, &b.concatenated, scratch)
            }
            _ => self.score_prepared(a, b),
        }
    }
}

/// A profile's derived matching views (token set + concatenated values),
/// computed once so candidate loops don't re-derive them per pair.
#[derive(Debug, Clone)]
pub struct PreparedProfile {
    /// Schema-agnostic token set.
    pub tokens: std::collections::BTreeSet<String>,
    /// All values joined by spaces.
    pub concatenated: String,
}

impl PreparedProfile {
    /// Derive the matching views of one profile.
    pub fn new(profile: &Profile) -> Self {
        PreparedProfile {
            tokens: profile.token_set(),
            concatenated: profile.concatenated_values(),
        }
    }

    /// Prepare every profile of a collection (index = profile id).
    pub fn prepare_all(collection: &ProfileCollection) -> Vec<PreparedProfile> {
        collection
            .profiles()
            .iter()
            .map(PreparedProfile::new)
            .collect()
    }
}

/// Anything that scores candidate pairs and retains matches.
pub trait Matcher {
    /// Similarity score of a candidate pair, in `[0, 1]`.
    fn score(&self, a: &Profile, b: &Profile) -> f64;

    /// Decision threshold: pairs scoring `≥` it are matches.
    fn threshold(&self) -> f64;

    /// Run over candidate pairs, returning the similarity graph of
    /// *retained* (matching) pairs.
    fn match_pairs(
        &self,
        collection: &ProfileCollection,
        candidates: impl IntoIterator<Item = Pair>,
    ) -> SimilarityGraph {
        let t = self.threshold();
        SimilarityGraph::new(candidates.into_iter().filter_map(|pair| {
            let s = self.score(collection.get(pair.first), collection.get(pair.second));
            (s >= t).then_some((pair, s))
        }))
    }

    /// Parallel variant: distribute the candidate pairs on the dataflow
    /// engine with the profile collection broadcast to every task — the
    /// way SparkER runs matching on Spark.
    fn match_pairs_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        candidates: Vec<Pair>,
    ) -> SimilarityGraph
    where
        Self: Sync,
    {
        let profiles = ctx.broadcast(collection.clone());
        let t = self.threshold();
        let ds = ctx.parallelize_default(candidates);
        let scored = ds.flat_map(move |pair| {
            let s = self.score(profiles.get(pair.first), profiles.get(pair.second));
            if s >= t {
                vec![(*pair, s)]
            } else {
                Vec::new()
            }
        });
        SimilarityGraph::new(scored.collect())
    }
}

/// The unsupervised matcher: one similarity measure plus one threshold.
#[derive(Debug, Clone)]
pub struct ThresholdMatcher {
    /// Measure to apply to each candidate pair.
    pub measure: SimilarityMeasure,
    /// Minimum score to call a pair a match.
    pub threshold: f64,
}

impl ThresholdMatcher {
    /// Create a matcher; `threshold` must be in `[0, 1]`.
    pub fn new(measure: SimilarityMeasure, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        ThresholdMatcher { measure, threshold }
    }

    /// Pool-parallel batch scoring over a [`CandidateGraph`]: candidates
    /// stream out of the graph's per-profile neighbor lists (no global pair
    /// vector), the prepared profile views are broadcast once, and ids are
    /// cost-partitioned by candidate degree into dynamically claimed
    /// morsels with per-worker edit-distance scratch. Byte-identical to
    /// [`Matcher::match_pairs`] over the same pair set at any worker count.
    pub fn match_candidates_pool(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        graph: &Arc<CandidateGraph>,
    ) -> SimilarityGraph {
        let prepared = ctx.broadcast(PreparedProfile::prepare_all(collection));
        let measure = self.measure;
        score_candidates_pool(
            ctx,
            graph,
            self.threshold,
            similarity::EditScratch::default,
            move |scratch, a, b| {
                measure.score_prepared_with(&prepared[a.index()], &prepared[b.index()], scratch)
            },
        )
    }
}

impl Matcher for ThresholdMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.measure.score(a, b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn match_pairs(
        &self,
        collection: &ProfileCollection,
        candidates: impl IntoIterator<Item = Pair>,
    ) -> SimilarityGraph {
        // Prepare each profile once; candidate sets typically reference the
        // same profiles many times, and tokenization dominates the naive
        // per-pair loop.
        let prepared = PreparedProfile::prepare_all(collection);
        let t = self.threshold;
        SimilarityGraph::new(candidates.into_iter().filter_map(|pair| {
            let s = self.measure.score_prepared(
                &prepared[pair.first.index()],
                &prepared[pair.second.index()],
            );
            (s >= t).then_some((pair, s))
        }))
    }

    fn match_pairs_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        candidates: Vec<Pair>,
    ) -> SimilarityGraph {
        // Broadcast the prepared views instead of the raw collection: every
        // task scores from the shared cache.
        let prepared = ctx.broadcast(PreparedProfile::prepare_all(collection));
        let measure = self.measure;
        let t = self.threshold;
        let ds = ctx.parallelize_default(candidates);
        let scored = ds.flat_map(move |pair| {
            let s = measure.score_prepared(
                &prepared[pair.first.index()],
                &prepared[pair.second.index()],
            );
            if s >= t {
                vec![(*pair, s)]
            } else {
                Vec::new()
            }
        });
        SimilarityGraph::new(scored.collect())
    }
}

/// One user-authored matching rule: compare a specific attribute of each
/// side with a chosen measure and weight.
#[derive(Debug, Clone)]
pub struct WeightedRule {
    /// Attribute name on the first profile's source.
    pub attribute_a: String,
    /// Attribute name on the second profile's source.
    pub attribute_b: String,
    /// Measure applied to the two attribute values.
    pub measure: SimilarityMeasure,
    /// Rule weight (weights are normalized over the applicable rules).
    pub weight: f64,
}

/// The supervised-mode matcher built from user knowledge: a weighted
/// combination of per-attribute similarity rules (the kind of matcher a
/// Magellan user would assemble). Rules whose attributes are missing on a
/// pair are skipped and the remaining weights renormalized.
#[derive(Debug, Clone)]
pub struct WeightedRuleMatcher {
    rules: Vec<WeightedRule>,
    threshold: f64,
}

impl WeightedRuleMatcher {
    /// Create from rules; panics on empty rules, non-positive weights or an
    /// out-of-range threshold.
    pub fn new(rules: Vec<WeightedRule>, threshold: f64) -> Self {
        assert!(!rules.is_empty(), "need at least one rule");
        assert!(
            rules.iter().all(|r| r.weight > 0.0),
            "rule weights must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        WeightedRuleMatcher { rules, threshold }
    }

    /// The rules, as configured.
    pub fn rules(&self) -> &[WeightedRule] {
        &self.rules
    }
}

impl Matcher for WeightedRuleMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let mut total_weight = 0.0;
        let mut total = 0.0;
        for rule in &self.rules {
            // Rules are directional on attribute names but profiles may
            // arrive in either order; try both orientations.
            let pair = match (a.value_of(&rule.attribute_a), b.value_of(&rule.attribute_b)) {
                (Some(va), Some(vb)) => Some((va, vb)),
                _ => match (b.value_of(&rule.attribute_a), a.value_of(&rule.attribute_b)) {
                    (Some(va), Some(vb)) => Some((va, vb)),
                    _ => None,
                },
            };
            if let Some((va, vb)) = pair {
                let pa = PreparedProfile {
                    tokens: sparker_profiles::tokenize(va).collect(),
                    concatenated: va.to_string(),
                };
                let pb = PreparedProfile {
                    tokens: sparker_profiles::tokenize(vb).collect(),
                    concatenated: vb.to_string(),
                };
                total += rule.weight * rule.measure.score_prepared(&pa, &pb);
                total_weight += rule.weight;
            }
        }
        if total_weight == 0.0 {
            0.0
        } else {
            total / total_weight
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// TF-IDF cosine as a matcher (needs the prebuilt index, so it does not fit
/// the `SimilarityMeasure` enum).
#[derive(Debug, Clone)]
pub struct TfIdfMatcher {
    index: TfIdfIndex,
    threshold: f64,
}

impl TfIdfMatcher {
    /// Build the index over `collection` and wrap it as a matcher.
    pub fn new(collection: &ProfileCollection, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        TfIdfMatcher {
            index: TfIdfIndex::build(collection),
            threshold,
        }
    }

    /// Pool-parallel batch scoring over a [`CandidateGraph`] with the
    /// TF-IDF index broadcast once to every task; byte-identical to
    /// [`Matcher::match_pairs`] over the same pair set at any worker count.
    pub fn match_candidates_pool(
        &self,
        ctx: &Context,
        graph: &Arc<CandidateGraph>,
    ) -> SimilarityGraph {
        let index = ctx.broadcast(self.index.clone());
        score_candidates_pool(
            ctx,
            graph,
            self.threshold,
            || (),
            move |_, a, b| index.cosine(a, b),
        )
    }
}

impl Matcher for TfIdfMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.index.cosine_profiles(a, b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{ProfileId, SourceId};

    fn collection() -> ProfileCollection {
        ProfileCollection::clean_clean(
            vec![
                Profile::builder(SourceId(0), "a1")
                    .attr("name", "Sony Bravia KDL40 TV")
                    .attr("price", "699.99")
                    .build(),
                Profile::builder(SourceId(0), "a2")
                    .attr("name", "Samsung Galaxy S9")
                    .attr("price", "899.00")
                    .build(),
            ],
            vec![
                Profile::builder(SourceId(1), "b1")
                    .attr("title", "Sony BRAVIA KDL40 television")
                    .attr("cost", "689.99")
                    .build(),
                Profile::builder(SourceId(1), "b2")
                    .attr("title", "Apple iPhone X")
                    .attr("cost", "999.00")
                    .build(),
            ],
        )
    }

    fn all_candidates(coll: &ProfileCollection) -> Vec<Pair> {
        let mut out = Vec::new();
        for i in 0..coll.separator() {
            for j in coll.separator()..coll.len() as u32 {
                out.push(Pair::new(ProfileId(i), ProfileId(j)));
            }
        }
        out
    }

    #[test]
    fn threshold_matcher_keeps_true_match() {
        let coll = collection();
        let m = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.4);
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert_eq!(g.len(), 1);
        assert_eq!(g.pairs(), vec![Pair::new(ProfileId(0), ProfileId(2))]);
    }

    #[test]
    fn measure_sweep_is_sane() {
        let coll = collection();
        let dup = (coll.get(ProfileId(0)), coll.get(ProfileId(2)));
        let non = (coll.get(ProfileId(0)), coll.get(ProfileId(3)));
        for measure in SimilarityMeasure::ALL {
            let s_dup = measure.score(dup.0, dup.1);
            let s_non = measure.score(non.0, non.1);
            assert!((0.0..=1.0).contains(&s_dup), "{}: {s_dup}", measure.name());
            assert!(
                s_dup > s_non,
                "{}: duplicate {s_dup} ≤ non-match {s_non}",
                measure.name()
            );
        }
    }

    #[test]
    fn dataflow_matching_equals_sequential() {
        let coll = collection();
        let m = ThresholdMatcher::new(SimilarityMeasure::Dice, 0.3);
        let seq = m.match_pairs(&coll, all_candidates(&coll));
        let ctx = Context::new(4);
        let par = m.match_pairs_dataflow(&ctx, &coll, all_candidates(&coll));
        assert_eq!(seq, par);
    }

    #[test]
    fn weighted_rules_combine_attributes() {
        let coll = collection();
        let m = WeightedRuleMatcher::new(
            vec![
                WeightedRule {
                    attribute_a: "name".to_string(),
                    attribute_b: "title".to_string(),
                    measure: SimilarityMeasure::MongeElkan,
                    weight: 3.0,
                },
                WeightedRule {
                    attribute_a: "price".to_string(),
                    attribute_b: "cost".to_string(),
                    measure: SimilarityMeasure::Levenshtein,
                    weight: 1.0,
                },
            ],
            0.6,
        );
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert_eq!(g.pairs(), vec![Pair::new(ProfileId(0), ProfileId(2))]);
        // Score order does not matter.
        let a = coll.get(ProfileId(0));
        let b = coll.get(ProfileId(2));
        assert!((m.score(a, b) - m.score(b, a)).abs() < 1e-12);
    }

    #[test]
    fn rules_with_missing_attributes_renormalize() {
        let coll = collection();
        let m = WeightedRuleMatcher::new(
            vec![
                WeightedRule {
                    attribute_a: "name".to_string(),
                    attribute_b: "title".to_string(),
                    measure: SimilarityMeasure::Jaccard,
                    weight: 1.0,
                },
                WeightedRule {
                    attribute_a: "nonexistent".to_string(),
                    attribute_b: "also-missing".to_string(),
                    measure: SimilarityMeasure::Jaccard,
                    weight: 100.0,
                },
            ],
            0.2,
        );
        let s = m.score(coll.get(ProfileId(0)), coll.get(ProfileId(2)));
        assert!(s > 0.0, "missing rule must not zero the score");
    }

    #[test]
    fn tfidf_matcher_works_as_matcher() {
        let coll = collection();
        let m = TfIdfMatcher::new(&coll, 0.2);
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert!(g.pairs().contains(&Pair::new(ProfileId(0), ProfileId(2))));
        assert!(!g.pairs().contains(&Pair::new(ProfileId(1), ProfileId(3))));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        ThresholdMatcher::new(SimilarityMeasure::Jaccard, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rules_rejected() {
        WeightedRuleMatcher::new(vec![], 0.5);
    }
}
