//! Matchers: turn candidate pairs into a similarity graph.
//!
//! The batch matchers run a **filter–verify cascade** (the standard
//! discipline of the set-similarity-join literature): every candidate pair
//! first passes through a cheap [`ScoreBound`] computed from cached sizes
//! alone, most pairs are rejected or handed an early-abandon budget, and
//! only the survivors pay for full verification. The cascade is
//! *exact* — the retained pairs and their scores are byte-identical to the
//! naive score-everything loop, which remains available as
//! [`ScoringMode::Naive`] (escape hatch: set `SPARKER_NAIVE_MATCHER=1`).

use crate::candidates::{filter_candidates_pool, CandidateGraph};
use crate::graph::SimilarityGraph;
use crate::similarity::{self, MatchScratch};
use crate::tfidf::TfIdfIndex;
use sparker_dataflow::{Context, WorkerLocal};
use sparker_profiles::{DictBuilder, Pair, Profile, ProfileCollection};
use std::sync::Arc;

/// A whole-profile similarity measure selectable by name — the paper's
/// "wide range of similarity (or distance) scores" the user can pick in the
/// entity-matching step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Jaccard over schema-agnostic token sets.
    Jaccard,
    /// Dice over token sets.
    Dice,
    /// Overlap coefficient over token sets.
    Overlap,
    /// Cosine over binary token vectors.
    CosineTokens,
    /// Normalized Levenshtein similarity of concatenated values.
    Levenshtein,
    /// Jaro–Winkler of concatenated values.
    JaroWinkler,
    /// Monge–Elkan (token-wise best Jaro–Winkler).
    MongeElkan,
}

impl SimilarityMeasure {
    /// All measures, for sweeps.
    pub const ALL: [SimilarityMeasure; 7] = [
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Dice,
        SimilarityMeasure::Overlap,
        SimilarityMeasure::CosineTokens,
        SimilarityMeasure::Levenshtein,
        SimilarityMeasure::JaroWinkler,
        SimilarityMeasure::MongeElkan,
    ];

    /// Human-readable name (stable; used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Jaccard => "jaccard",
            SimilarityMeasure::Dice => "dice",
            SimilarityMeasure::Overlap => "overlap",
            SimilarityMeasure::CosineTokens => "cosine",
            SimilarityMeasure::Levenshtein => "levenshtein",
            SimilarityMeasure::JaroWinkler => "jaro-winkler",
            SimilarityMeasure::MongeElkan => "monge-elkan",
        }
    }

    /// Score two profiles in `[0, 1]`.
    pub fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let (pa, pb) = PreparedProfile::pair(a, b);
        self.score_prepared(&pa, &pb)
    }

    /// Score two [`PreparedProfile`]s — the allocation-light inner loop
    /// used by the batch matchers, which prepare each profile once instead
    /// of re-tokenizing it per candidate pair.
    ///
    /// Both profiles must have been prepared against the **same**
    /// [`DictBuilder`] (see [`PreparedProfile`]); ids from different
    /// interning spaces are not comparable.
    pub fn score_prepared(&self, a: &PreparedProfile, b: &PreparedProfile) -> f64 {
        self.score_prepared_with(a, b, &mut MatchScratch::default())
    }

    /// [`SimilarityMeasure::score_prepared`] with reusable kernel buffers —
    /// identical bits; the string measures stop allocating their DP rows,
    /// match bookkeeping and lowercase arenas per pair. The batch matchers
    /// keep one [`MatchScratch`] per worker slot.
    pub fn score_prepared_with(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        scratch: &mut MatchScratch,
    ) -> f64 {
        match self {
            SimilarityMeasure::Jaccard => similarity::jaccard_ids(&a.token_ids, &b.token_ids),
            SimilarityMeasure::Dice => similarity::dice_ids(&a.token_ids, &b.token_ids),
            SimilarityMeasure::Overlap => similarity::overlap_ids(&a.token_ids, &b.token_ids),
            SimilarityMeasure::CosineTokens => similarity::cosine_ids(&a.token_ids, &b.token_ids),
            SimilarityMeasure::Levenshtein => similarity::levenshtein_similarity_with(
                &a.concatenated,
                &b.concatenated,
                &mut scratch.edit,
            ),
            SimilarityMeasure::JaroWinkler => {
                similarity::jaro_winkler_with(&a.concatenated, &b.concatenated, scratch)
            }
            SimilarityMeasure::MongeElkan => {
                similarity::monge_elkan_with(&a.concatenated, &b.concatenated, scratch)
            }
        }
    }

    /// The shared set-measure formula over an intersection count — the one
    /// computation both the cascade's bound search and its verification use,
    /// so they agree with the naive scorer bit for bit.
    fn set_score_counts(&self, inter: usize, la: usize, lb: usize) -> f64 {
        match self {
            SimilarityMeasure::Jaccard => similarity::jaccard_counts(inter, la, lb),
            SimilarityMeasure::Dice => similarity::dice_counts(inter, la, lb),
            SimilarityMeasure::Overlap => similarity::overlap_counts(inter, la, lb),
            SimilarityMeasure::CosineTokens => similarity::cosine_counts(inter, la, lb),
            _ => unreachable!("set_score_counts called on a string measure"),
        }
    }

    /// The cheap pre-verification filter of the cascade, computed from the
    /// cached sizes of the two prepared views alone (no token or char
    /// comparison).
    ///
    /// The contract, which makes the cascade exact: a pair scoring
    /// `≥ threshold` under the naive scorer is never mapped to
    /// [`ScoreBound::Reject`], a [`ScoreBound::MinOverlap`]/
    /// [`ScoreBound::MaxDistance`] budget is never tight enough to abandon
    /// such a pair during verification, and every budgeted verification
    /// that completes reproduces the naive score exactly.
    pub fn score_bound(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        threshold: f64,
    ) -> ScoreBound {
        match self {
            SimilarityMeasure::Jaccard
            | SimilarityMeasure::Dice
            | SimilarityMeasure::Overlap
            | SimilarityMeasure::CosineTokens => {
                let (la, lb) = (a.token_ids.len(), b.token_ids.len());
                // Smallest intersection count whose score reaches the
                // threshold, under the exact scoring formula (monotone in
                // the count). None even at full overlap ⇒ the sizes alone
                // rule the pair out — the classic length filter.
                match required_overlap(|c| self.set_score_counts(c, la, lb), la.min(lb), threshold)
                {
                    Some(need) => ScoreBound::MinOverlap(need),
                    None => ScoreBound::Reject,
                }
            }
            SimilarityMeasure::Levenshtein => {
                let max = a.chars.max(b.chars);
                if max == 0 {
                    // Both concatenations empty: exact score is 1.0.
                    return ScoreBound::MaxDistance(0);
                }
                // Largest edit distance whose similarity still reaches the
                // threshold (same formula as verification; monotone in d,
                // and d = 0 always passes since threshold ≤ 1).
                let sim = |d: usize| 1.0 - d as f64 / max as f64;
                let k = if sim(max) >= threshold {
                    max
                } else {
                    let (mut lo, mut hi) = (0usize, max);
                    while hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        if sim(mid) >= threshold {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                };
                if a.chars.abs_diff(b.chars) > k {
                    // The length difference alone exceeds the budget.
                    ScoreBound::Reject
                } else {
                    ScoreBound::MaxDistance(k)
                }
            }
            SimilarityMeasure::JaroWinkler => {
                let (min, max) = (a.chars.min(b.chars), a.chars.max(b.chars));
                if max == 0 {
                    return ScoreBound::Verify; // both empty: exact score is 1.0
                }
                if min == 0 {
                    // One side empty: exact score is 0.0.
                    return if 0.0 >= threshold {
                        ScoreBound::Verify
                    } else {
                        ScoreBound::Reject
                    };
                }
                // Jaro matches are capped by the shorter side, so
                // jaro ≤ (2 + min/max)/3; Winkler (boost threshold 0.7,
                // prefix ≤ 4) then caps the final score at 0.6·bj + 0.4
                // when bj exceeds the boost threshold. The 1e-9 margin
                // absorbs rounding in the bound itself — verification,
                // not the bound, decides borderline pairs.
                let bj = (2.0 + min as f64 / max as f64) / 3.0;
                let bound = if bj > 0.7 { 0.6 * bj + 0.4 } else { bj };
                if bound < threshold - 1e-9 {
                    ScoreBound::Reject
                } else {
                    ScoreBound::Verify
                }
            }
            SimilarityMeasure::MongeElkan => ScoreBound::Verify,
        }
    }

    /// Run the full cascade on one pair: bound, then budgeted or plain
    /// verification. Returns `Some(score)` **iff** the naive scorer would
    /// retain the pair at `threshold`, with the exact same score bits.
    pub fn verify_prepared(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        threshold: f64,
        scratch: &mut MatchScratch,
        stats: &mut FilterStats,
    ) -> Option<f64> {
        stats.pairs += 1;
        match self.score_bound(a, b, threshold) {
            ScoreBound::Reject => {
                stats.bound_rejected += 1;
                None
            }
            ScoreBound::MinOverlap(need) => {
                match similarity::intersect_ids_at_least(&a.token_ids, &b.token_ids, need) {
                    None => {
                        stats.abandoned += 1;
                        None
                    }
                    Some(inter) => {
                        // Completion implies inter ≥ need, and `need` is the
                        // smallest count that reaches the threshold — the
                        // pair is a match by construction.
                        stats.verified += 1;
                        stats.kept += 1;
                        Some(self.set_score_counts(inter, a.token_ids.len(), b.token_ids.len()))
                    }
                }
            }
            ScoreBound::MaxDistance(k) => {
                match similarity::levenshtein_within_with(
                    &a.concatenated,
                    &b.concatenated,
                    k,
                    &mut scratch.edit,
                ) {
                    None => {
                        stats.abandoned += 1;
                        None
                    }
                    Some(d) => {
                        stats.verified += 1;
                        stats.kept += 1;
                        let max = a.chars.max(b.chars);
                        Some(if max == 0 {
                            1.0
                        } else {
                            1.0 - d as f64 / max as f64
                        })
                    }
                }
            }
            ScoreBound::Verify => {
                stats.verified += 1;
                let s = self.score_prepared_with(a, b, scratch);
                if s >= threshold {
                    stats.kept += 1;
                    Some(s)
                } else {
                    None
                }
            }
        }
    }
}

/// Smallest intersection count in `0..=m` whose (monotone nondecreasing)
/// score reaches `t`, or `None` if even `m` falls short.
fn required_overlap(f: impl Fn(usize) -> f64, m: usize, t: f64) -> Option<usize> {
    if f(m) < t {
        return None;
    }
    if f(0) >= t {
        return Some(0);
    }
    // Invariant: f(lo) < t ≤ f(hi).
    let (mut lo, mut hi) = (0usize, m);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if f(mid) >= t {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// What the pre-verification filter decided for one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreBound {
    /// The sizes alone prove the score cannot reach the threshold.
    Reject,
    /// Set measure: a match needs at least this intersection count; the
    /// merge-join may abandon once the count is unreachable.
    MinOverlap(usize),
    /// Levenshtein: a match needs edit distance at most this; the banded DP
    /// may abandon once every path exceeds it.
    MaxDistance(usize),
    /// No useful bound — verify with the full kernel.
    Verify,
}

/// Counters of the cascade's filtering effectiveness, merged across worker
/// slots. `pairs = bound_rejected + abandoned + verified`, and
/// `kept ≤ verified`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Candidate pairs examined.
    pub pairs: u64,
    /// Rejected by the size bound alone (no token/char comparison).
    pub bound_rejected: u64,
    /// Abandoned mid-verification by an overlap or distance budget.
    pub abandoned: u64,
    /// Fully verified (budget met or no bound available).
    pub verified: u64,
    /// Retained as matches.
    pub kept: u64,
}

impl FilterStats {
    /// Accumulate another slot's counters.
    pub fn merge(&mut self, other: &FilterStats) {
        self.pairs += other.pairs;
        self.bound_rejected += other.bound_rejected;
        self.abandoned += other.abandoned;
        self.verified += other.verified;
        self.kept += other.kept;
    }

    /// Pairs that never paid for full verification.
    pub fn filtered(&self) -> u64 {
        self.bound_rejected + self.abandoned
    }
}

/// How [`ThresholdMatcher`] scores candidate pairs. Both modes retain the
/// same pairs with the same score bits; `Naive` exists as an escape hatch
/// and as the reference side of the equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Filter–verify cascade (the default).
    #[default]
    Cascade,
    /// Score every candidate pair with the full kernel.
    Naive,
}

impl ScoringMode {
    /// Read the mode from the environment: `SPARKER_NAIVE_MATCHER` set to
    /// anything non-empty selects [`ScoringMode::Naive`].
    pub fn from_env() -> Self {
        match std::env::var("SPARKER_NAIVE_MATCHER") {
            Ok(v) if !v.is_empty() => ScoringMode::Naive,
            _ => ScoringMode::Cascade,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScoringMode::Cascade => "cascade",
            ScoringMode::Naive => "naive",
        }
    }
}

/// A profile's derived matching views, computed once so candidate loops
/// don't re-derive them per pair: the interned, sorted token-id vector (set
/// measures become `u32` merge-joins), the concatenated values (string
/// measures) and the cached char count of the concatenation (length
/// filters).
///
/// Token ids are **provisional** ids from a caller-supplied
/// [`DictBuilder`]: two views are only comparable when prepared against the
/// same builder. Set-measure scores depend only on intersection counts and
/// set sizes, which any injective token → id mapping preserves, so the
/// builder's insertion-order ids need no lexicographic remap.
#[derive(Debug, Clone, Default)]
pub struct PreparedProfile {
    /// Sorted, deduplicated interned token ids of the schema-agnostic
    /// token set.
    pub token_ids: Vec<u32>,
    /// All values joined by spaces.
    pub concatenated: String,
    /// Char count of `concatenated` (cached for length filters).
    pub chars: usize,
}

impl PreparedProfile {
    /// Derive the matching views of one profile against `dict`.
    pub fn from_profile(profile: &Profile, dict: &mut DictBuilder, scratch: &mut String) -> Self {
        let mut token_ids = Vec::new();
        for a in &profile.attributes {
            dict.intern_tokens(&a.value, scratch, &mut token_ids);
        }
        token_ids.sort_unstable();
        token_ids.dedup();
        let concatenated = profile.concatenated_values();
        let chars = concatenated.chars().count();
        PreparedProfile {
            token_ids,
            concatenated,
            chars,
        }
    }

    /// Prepare a bare attribute value (used by [`WeightedRuleMatcher`],
    /// whose rules compare single values rather than whole profiles).
    pub fn from_value(value: &str, dict: &mut DictBuilder, scratch: &mut String) -> Self {
        let mut token_ids = Vec::new();
        dict.intern_tokens(value, scratch, &mut token_ids);
        token_ids.sort_unstable();
        token_ids.dedup();
        PreparedProfile {
            token_ids,
            concatenated: value.to_string(),
            chars: value.chars().count(),
        }
    }

    /// Prepare two profiles against a fresh shared interner — the
    /// convenience path for one-off [`SimilarityMeasure::score`] calls.
    pub fn pair(a: &Profile, b: &Profile) -> (Self, Self) {
        let mut dict = DictBuilder::new();
        let mut scratch = String::new();
        (
            Self::from_profile(a, &mut dict, &mut scratch),
            Self::from_profile(b, &mut dict, &mut scratch),
        )
    }

    /// Prepare every profile of a collection against one shared interner
    /// (index = profile id).
    pub fn prepare_all(collection: &ProfileCollection) -> Vec<PreparedProfile> {
        let mut dict = DictBuilder::new();
        let mut scratch = String::new();
        collection
            .profiles()
            .iter()
            .map(|p| PreparedProfile::from_profile(p, &mut dict, &mut scratch))
            .collect()
    }
}

/// Anything that scores candidate pairs and retains matches.
pub trait Matcher {
    /// Similarity score of a candidate pair, in `[0, 1]`.
    fn score(&self, a: &Profile, b: &Profile) -> f64;

    /// Decision threshold: pairs scoring `≥` it are matches.
    fn threshold(&self) -> f64;

    /// Run over candidate pairs, returning the similarity graph of
    /// *retained* (matching) pairs.
    fn match_pairs(
        &self,
        collection: &ProfileCollection,
        candidates: impl IntoIterator<Item = Pair>,
    ) -> SimilarityGraph {
        let t = self.threshold();
        SimilarityGraph::new(candidates.into_iter().filter_map(|pair| {
            let s = self.score(collection.get(pair.first), collection.get(pair.second));
            (s >= t).then_some((pair, s))
        }))
    }

    /// Parallel variant: distribute the candidate pairs on the dataflow
    /// engine with the profile collection broadcast to every task — the
    /// way SparkER runs matching on Spark.
    fn match_pairs_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        candidates: Vec<Pair>,
    ) -> SimilarityGraph
    where
        Self: Sync,
    {
        let profiles = ctx.broadcast(collection.clone());
        let t = self.threshold();
        let ds = ctx.parallelize_default(candidates);
        let scored = ds.flat_map(move |pair| {
            let s = self.score(profiles.get(pair.first), profiles.get(pair.second));
            if s >= t {
                vec![(*pair, s)]
            } else {
                Vec::new()
            }
        });
        SimilarityGraph::new(scored.collect())
    }
}

/// The unsupervised matcher: one similarity measure plus one threshold.
///
/// Scoring runs the filter–verify cascade by default; see [`ScoringMode`].
#[derive(Debug, Clone)]
pub struct ThresholdMatcher {
    /// Measure to apply to each candidate pair.
    pub measure: SimilarityMeasure,
    /// Minimum score to call a pair a match.
    pub threshold: f64,
    mode: ScoringMode,
}

impl ThresholdMatcher {
    /// Create a matcher; `threshold` must be in `[0, 1]`. The scoring mode
    /// is read from the environment once here (see
    /// [`ScoringMode::from_env`]); use [`ThresholdMatcher::with_mode`] to
    /// pick it explicitly.
    pub fn new(measure: SimilarityMeasure, threshold: f64) -> Self {
        Self::with_mode(measure, threshold, ScoringMode::from_env())
    }

    /// Create a matcher with an explicit scoring mode.
    pub fn with_mode(measure: SimilarityMeasure, threshold: f64, mode: ScoringMode) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        ThresholdMatcher {
            measure,
            threshold,
            mode,
        }
    }

    /// The active scoring mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    /// Score one prepared pair under the configured mode: `Some(score)` iff
    /// the pair is retained at the matcher's threshold.
    pub(crate) fn decide(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        scratch: &mut MatchScratch,
        stats: &mut FilterStats,
    ) -> Option<f64> {
        match self.mode {
            ScoringMode::Cascade => {
                self.measure
                    .verify_prepared(a, b, self.threshold, scratch, stats)
            }
            ScoringMode::Naive => {
                stats.pairs += 1;
                stats.verified += 1;
                let s = self.measure.score_prepared_with(a, b, scratch);
                if s >= self.threshold {
                    stats.kept += 1;
                    Some(s)
                } else {
                    None
                }
            }
        }
    }

    /// Public entry point for the matcher's per-pair decision: score one
    /// prepared pair, returning `Some(score)` iff it clears the threshold.
    /// This is the per-pair unit the online resolver calls when an edge is
    /// (re)retained — identical decisions to the batch drivers, including
    /// the filter–verify cascade and the `SPARKER_NAIVE_MATCHER` escape
    /// hatch, because it *is* the same code path.
    pub fn decide_prepared(
        &self,
        a: &PreparedProfile,
        b: &PreparedProfile,
        scratch: &mut MatchScratch,
        stats: &mut FilterStats,
    ) -> Option<f64> {
        self.decide(a, b, scratch, stats)
    }

    /// Pool-parallel batch scoring over a [`CandidateGraph`]: candidates
    /// stream out of the graph's per-profile neighbor lists (no global pair
    /// vector), the prepared profile views are broadcast once, and ids are
    /// cost-partitioned by candidate degree into dynamically claimed
    /// morsels with per-worker kernel scratch. Byte-identical to
    /// [`Matcher::match_pairs`] over the same pair set at any worker count.
    pub fn match_candidates_pool(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        graph: &Arc<CandidateGraph>,
    ) -> SimilarityGraph {
        self.match_candidates_pool_stats(ctx, collection, graph).0
    }

    /// [`ThresholdMatcher::match_candidates_pool`] plus the cascade's
    /// merged [`FilterStats`] (what fraction of pairs the bounds filtered).
    pub fn match_candidates_pool_stats(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        graph: &Arc<CandidateGraph>,
    ) -> (SimilarityGraph, FilterStats) {
        let prepared = ctx.broadcast(PreparedProfile::prepare_all(collection));
        let matcher = self.clone();
        let locals = Arc::new(WorkerLocal::new(ctx.workers(), || {
            (MatchScratch::default(), FilterStats::default())
        }));
        let graph_out = filter_candidates_pool(ctx, graph, &locals, move |state, a, b| {
            let (scratch, stats) = state;
            matcher.decide(&prepared[a.index()], &prepared[b.index()], scratch, stats)
        });
        let stats = match Arc::try_unwrap(locals) {
            Ok(locals) => {
                let mut merged = FilterStats::default();
                for (_, slot) in locals.into_inner() {
                    merged.merge(&slot);
                }
                merged
            }
            Err(_) => FilterStats::default(),
        };
        (graph_out, stats)
    }
}

impl Matcher for ThresholdMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.measure.score(a, b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn match_pairs(
        &self,
        collection: &ProfileCollection,
        candidates: impl IntoIterator<Item = Pair>,
    ) -> SimilarityGraph {
        // Prepare each profile once; candidate sets typically reference the
        // same profiles many times, and tokenization dominates the naive
        // per-pair loop.
        let prepared = PreparedProfile::prepare_all(collection);
        let mut scratch = MatchScratch::default();
        let mut stats = FilterStats::default();
        SimilarityGraph::new(candidates.into_iter().filter_map(|pair| {
            self.decide(
                &prepared[pair.first.index()],
                &prepared[pair.second.index()],
                &mut scratch,
                &mut stats,
            )
            .map(|s| (pair, s))
        }))
    }

    fn match_pairs_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        candidates: Vec<Pair>,
    ) -> SimilarityGraph {
        // Broadcast the prepared views instead of the raw collection: every
        // task scores from the shared cache. Partition-granular mapping
        // gives each task one scratch warmed across its whole slice.
        let prepared = ctx.broadcast(PreparedProfile::prepare_all(collection));
        let matcher = self.clone();
        let ds = ctx.parallelize_default(candidates);
        let scored = ds.map_partitions(move |_, pairs| {
            let mut scratch = MatchScratch::default();
            let mut stats = FilterStats::default();
            pairs
                .iter()
                .filter_map(|pair| {
                    matcher
                        .decide(
                            &prepared[pair.first.index()],
                            &prepared[pair.second.index()],
                            &mut scratch,
                            &mut stats,
                        )
                        .map(|s| (*pair, s))
                })
                .collect()
        });
        SimilarityGraph::new(scored.collect())
    }
}

/// One user-authored matching rule: compare a specific attribute of each
/// side with a chosen measure and weight.
#[derive(Debug, Clone)]
pub struct WeightedRule {
    /// Attribute name on the first profile's source.
    pub attribute_a: String,
    /// Attribute name on the second profile's source.
    pub attribute_b: String,
    /// Measure applied to the two attribute values.
    pub measure: SimilarityMeasure,
    /// Rule weight (weights are normalized over the applicable rules).
    pub weight: f64,
}

/// The supervised-mode matcher built from user knowledge: a weighted
/// combination of per-attribute similarity rules (the kind of matcher a
/// Magellan user would assemble). Rules whose attributes are missing on a
/// pair are skipped and the remaining weights renormalized.
#[derive(Debug, Clone)]
pub struct WeightedRuleMatcher {
    rules: Vec<WeightedRule>,
    threshold: f64,
}

impl WeightedRuleMatcher {
    /// Create from rules; panics on empty rules, non-positive weights or an
    /// out-of-range threshold.
    pub fn new(rules: Vec<WeightedRule>, threshold: f64) -> Self {
        assert!(!rules.is_empty(), "need at least one rule");
        assert!(
            rules.iter().all(|r| r.weight > 0.0),
            "rule weights must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        WeightedRuleMatcher { rules, threshold }
    }

    /// The rules, as configured.
    pub fn rules(&self) -> &[WeightedRule] {
        &self.rules
    }

    /// Rule score of two raw attribute values (fresh shared interner, so
    /// the result equals scoring the same values from any cache).
    fn value_score(measure: SimilarityMeasure, va: &str, vb: &str) -> f64 {
        let mut dict = DictBuilder::new();
        let mut scratch = String::new();
        let pa = PreparedProfile::from_value(va, &mut dict, &mut scratch);
        let pb = PreparedProfile::from_value(vb, &mut dict, &mut scratch);
        measure.score_prepared(&pa, &pb)
    }
}

impl Matcher for WeightedRuleMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let mut total_weight = 0.0;
        let mut total = 0.0;
        for rule in &self.rules {
            // Rules are directional on attribute names but profiles may
            // arrive in either order; evaluate every orientation that
            // resolves and take the better one. `max` commutes under
            // argument swap, so the combined score is symmetric (a
            // first-orientation-wins preference is not).
            let fwd = match (a.value_of(&rule.attribute_a), b.value_of(&rule.attribute_b)) {
                (Some(va), Some(vb)) => Some(Self::value_score(rule.measure, va, vb)),
                _ => None,
            };
            let rev = match (b.value_of(&rule.attribute_a), a.value_of(&rule.attribute_b)) {
                (Some(va), Some(vb)) => Some(Self::value_score(rule.measure, va, vb)),
                _ => None,
            };
            let s = match (fwd, rev) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            };
            if let Some(s) = s {
                total += rule.weight * s;
                total_weight += rule.weight;
            }
        }
        if total_weight == 0.0 {
            0.0
        } else {
            total / total_weight
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn match_pairs(
        &self,
        collection: &ProfileCollection,
        candidates: impl IntoIterator<Item = Pair>,
    ) -> SimilarityGraph {
        // Cache prepared attribute views per (profile, rule attribute)
        // across the candidate loop — the naive path re-tokenized both
        // values for every rule on every pair. One shared interner keeps
        // ids comparable across all cached views, and set-measure scores
        // only depend on intersection counts, so cached scoring is
        // bit-identical to `score`.
        let mut names: Vec<&str> = self
            .rules
            .iter()
            .flat_map(|r| [r.attribute_a.as_str(), r.attribute_b.as_str()])
            .collect();
        names.sort_unstable();
        names.dedup();
        let width = names.len();
        // cache[profile * width + name]: None = not derived yet,
        // Some(None) = attribute missing on that profile.
        let mut cache: Vec<Option<Option<PreparedProfile>>> = vec![None; collection.len() * width];
        let mut dict = DictBuilder::new();
        let mut tok_scratch = String::new();
        let mut retained = Vec::new();
        for pair in candidates {
            let (pa, pb) = (collection.get(pair.first), collection.get(pair.second));
            let mut total_weight = 0.0;
            let mut total = 0.0;
            for rule in &self.rules {
                let ia = names.binary_search(&rule.attribute_a.as_str()).unwrap();
                let ib = names.binary_search(&rule.attribute_b.as_str()).unwrap();
                for (p, ni) in [(pa, ia), (pb, ib), (pb, ia), (pa, ib)] {
                    let slot = p.id.index() * width + ni;
                    if cache[slot].is_none() {
                        cache[slot] =
                            Some(p.value_of(names[ni]).map(|v| {
                                PreparedProfile::from_value(v, &mut dict, &mut tok_scratch)
                            }));
                    }
                }
                let view = |p: &Profile, ni: usize| -> Option<&PreparedProfile> {
                    cache[p.id.index() * width + ni].as_ref().unwrap().as_ref()
                };
                let fwd = match (view(pa, ia), view(pb, ib)) {
                    (Some(x), Some(y)) => Some(rule.measure.score_prepared(x, y)),
                    _ => None,
                };
                let rev = match (view(pb, ia), view(pa, ib)) {
                    (Some(x), Some(y)) => Some(rule.measure.score_prepared(x, y)),
                    _ => None,
                };
                let s = match (fwd, rev) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                };
                if let Some(s) = s {
                    total += rule.weight * s;
                    total_weight += rule.weight;
                }
            }
            let score = if total_weight == 0.0 {
                0.0
            } else {
                total / total_weight
            };
            if score >= self.threshold {
                retained.push((pair, score));
            }
        }
        SimilarityGraph::new(retained)
    }
}

/// TF-IDF cosine as a matcher (needs the prebuilt index, so it does not fit
/// the `SimilarityMeasure` enum).
#[derive(Debug, Clone)]
pub struct TfIdfMatcher {
    index: TfIdfIndex,
    threshold: f64,
}

impl TfIdfMatcher {
    /// Build the index over `collection` and wrap it as a matcher.
    pub fn new(collection: &ProfileCollection, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        TfIdfMatcher {
            index: TfIdfIndex::build(collection),
            threshold,
        }
    }

    /// Pool-parallel batch scoring over a [`CandidateGraph`] with the
    /// TF-IDF index broadcast once to every task; byte-identical to
    /// [`Matcher::match_pairs`] over the same pair set at any worker count.
    pub fn match_candidates_pool(
        &self,
        ctx: &Context,
        graph: &Arc<CandidateGraph>,
    ) -> SimilarityGraph {
        let index = ctx.broadcast(self.index.clone());
        crate::candidates::score_candidates_pool(
            ctx,
            graph,
            self.threshold,
            || (),
            move |_, a, b| index.cosine(a, b),
        )
    }
}

impl Matcher for TfIdfMatcher {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        self.index.cosine_profiles(a, b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{ProfileId, SourceId};

    fn collection() -> ProfileCollection {
        ProfileCollection::clean_clean(
            vec![
                Profile::builder(SourceId(0), "a1")
                    .attr("name", "Sony Bravia KDL40 TV")
                    .attr("price", "699.99")
                    .build(),
                Profile::builder(SourceId(0), "a2")
                    .attr("name", "Samsung Galaxy S9")
                    .attr("price", "899.00")
                    .build(),
            ],
            vec![
                Profile::builder(SourceId(1), "b1")
                    .attr("title", "Sony BRAVIA KDL40 television")
                    .attr("cost", "689.99")
                    .build(),
                Profile::builder(SourceId(1), "b2")
                    .attr("title", "Apple iPhone X")
                    .attr("cost", "999.00")
                    .build(),
            ],
        )
    }

    fn all_candidates(coll: &ProfileCollection) -> Vec<Pair> {
        let mut out = Vec::new();
        for i in 0..coll.separator() {
            for j in coll.separator()..coll.len() as u32 {
                out.push(Pair::new(ProfileId(i), ProfileId(j)));
            }
        }
        out
    }

    #[test]
    fn threshold_matcher_keeps_true_match() {
        let coll = collection();
        let m = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.4);
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert_eq!(g.len(), 1);
        assert_eq!(g.pairs(), vec![Pair::new(ProfileId(0), ProfileId(2))]);
    }

    #[test]
    fn measure_sweep_is_sane() {
        let coll = collection();
        let dup = (coll.get(ProfileId(0)), coll.get(ProfileId(2)));
        let non = (coll.get(ProfileId(0)), coll.get(ProfileId(3)));
        for measure in SimilarityMeasure::ALL {
            let s_dup = measure.score(dup.0, dup.1);
            let s_non = measure.score(non.0, non.1);
            assert!((0.0..=1.0).contains(&s_dup), "{}: {s_dup}", measure.name());
            assert!(
                s_dup > s_non,
                "{}: duplicate {s_dup} ≤ non-match {s_non}",
                measure.name()
            );
        }
    }

    #[test]
    fn cascade_equals_naive_on_every_measure_and_threshold() {
        let coll = collection();
        for measure in SimilarityMeasure::ALL {
            for threshold in [0.0, 0.3, 0.5, 0.8, 1.0] {
                let naive = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Naive)
                    .match_pairs(&coll, all_candidates(&coll));
                let cascade = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Cascade)
                    .match_pairs(&coll, all_candidates(&coll));
                assert_eq!(naive, cascade, "{} @ {threshold}", measure.name());
            }
        }
    }

    #[test]
    fn cascade_handles_blank_profiles() {
        // Blank profiles prepare to empty token sets and empty
        // concatenations — the bound paths must reproduce each measure's
        // empty-input convention exactly.
        let coll = ProfileCollection::clean_clean(
            vec![
                Profile::builder(SourceId(0), "a1").build(),
                Profile::builder(SourceId(0), "a2")
                    .attr("name", "sony tv")
                    .build(),
            ],
            vec![
                Profile::builder(SourceId(1), "b1").build(),
                Profile::builder(SourceId(1), "b2")
                    .attr("title", "sony tv")
                    .build(),
            ],
        );
        for measure in SimilarityMeasure::ALL {
            for threshold in [0.0, 0.5, 1.0] {
                let naive = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Naive)
                    .match_pairs(&coll, all_candidates(&coll));
                let cascade = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Cascade)
                    .match_pairs(&coll, all_candidates(&coll));
                assert_eq!(naive, cascade, "{} @ {threshold}", measure.name());
            }
        }
    }

    #[test]
    fn filter_stats_account_for_every_pair() {
        let coll = collection();
        let candidates = all_candidates(&coll);
        let ctx = Context::new(2);
        let graph = Arc::new(CandidateGraph::from_pairs(
            coll.len(),
            candidates.iter().copied(),
        ));
        let m = ThresholdMatcher::with_mode(SimilarityMeasure::Jaccard, 0.4, ScoringMode::Cascade);
        let (g, stats) = m.match_candidates_pool_stats(&ctx, &coll, &graph);
        assert_eq!(stats.pairs, candidates.len() as u64);
        assert_eq!(stats.kept, g.len() as u64);
        assert_eq!(
            stats.pairs,
            stats.bound_rejected + stats.abandoned + stats.verified
        );
        assert!(stats.kept <= stats.verified);
        // At threshold 0.4 the dissimilar pairs are size-filterable or
        // abandoned: the cascade must actually filter something here.
        assert!(stats.filtered() > 0, "cascade filtered nothing: {stats:?}");
    }

    #[test]
    fn scoring_mode_env_escape_hatch_parses() {
        // Can't mutate the process environment safely in a parallel test
        // run; `from_env` is exercised for the unset case and the explicit
        // constructor covers the rest.
        assert_eq!(ScoringMode::default(), ScoringMode::Cascade);
        assert_eq!(ScoringMode::Cascade.name(), "cascade");
        assert_eq!(ScoringMode::Naive.name(), "naive");
        let m = ThresholdMatcher::with_mode(SimilarityMeasure::Dice, 0.3, ScoringMode::Naive);
        assert_eq!(m.mode(), ScoringMode::Naive);
    }

    #[test]
    fn dataflow_matching_equals_sequential() {
        let coll = collection();
        let m = ThresholdMatcher::new(SimilarityMeasure::Dice, 0.3);
        let seq = m.match_pairs(&coll, all_candidates(&coll));
        let ctx = Context::new(4);
        let par = m.match_pairs_dataflow(&ctx, &coll, all_candidates(&coll));
        assert_eq!(seq, par);
    }

    #[test]
    fn weighted_rules_combine_attributes() {
        let coll = collection();
        let m = WeightedRuleMatcher::new(
            vec![
                WeightedRule {
                    attribute_a: "name".to_string(),
                    attribute_b: "title".to_string(),
                    measure: SimilarityMeasure::MongeElkan,
                    weight: 3.0,
                },
                WeightedRule {
                    attribute_a: "price".to_string(),
                    attribute_b: "cost".to_string(),
                    measure: SimilarityMeasure::Levenshtein,
                    weight: 1.0,
                },
            ],
            0.6,
        );
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert_eq!(g.pairs(), vec![Pair::new(ProfileId(0), ProfileId(2))]);
        // Score order does not matter.
        let a = coll.get(ProfileId(0));
        let b = coll.get(ProfileId(2));
        assert!((m.score(a, b) - m.score(b, a)).abs() < 1e-12);
    }

    #[test]
    fn weighted_rules_symmetric_when_both_orientations_resolve() {
        // Regression: both profiles carry both rule attributes, so both
        // orientations resolve with *different* value pairs. The score must
        // still be exactly symmetric (max over orientations, not
        // first-orientation-wins).
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "p0")
                .attr("x", "foo bar")
                .attr("y", "baz")
                .build(),
            Profile::builder(SourceId(0), "p1")
                .attr("x", "qux")
                .attr("y", "foo")
                .build(),
        ]);
        let m = WeightedRuleMatcher::new(
            vec![WeightedRule {
                attribute_a: "x".to_string(),
                attribute_b: "y".to_string(),
                measure: SimilarityMeasure::Jaccard,
                weight: 1.0,
            }],
            0.0,
        );
        let a = coll.get(ProfileId(0));
        let b = coll.get(ProfileId(1));
        let fwd = WeightedRuleMatcher::value_score(SimilarityMeasure::Jaccard, "foo bar", "foo");
        let rev = WeightedRuleMatcher::value_score(SimilarityMeasure::Jaccard, "qux", "baz");
        assert!(
            fwd > rev,
            "test fixture should make the orientations differ"
        );
        assert_eq!(m.score(a, b).to_bits(), m.score(b, a).to_bits());
        assert_eq!(m.score(a, b).to_bits(), fwd.to_bits());
    }

    #[test]
    fn weighted_rules_cached_match_pairs_equals_scores() {
        let coll = collection();
        let m = WeightedRuleMatcher::new(
            vec![
                WeightedRule {
                    attribute_a: "name".to_string(),
                    attribute_b: "title".to_string(),
                    measure: SimilarityMeasure::Jaccard,
                    weight: 2.0,
                },
                WeightedRule {
                    attribute_a: "price".to_string(),
                    attribute_b: "cost".to_string(),
                    measure: SimilarityMeasure::Levenshtein,
                    weight: 1.0,
                },
            ],
            0.3,
        );
        let candidates = all_candidates(&coll);
        // Reference: the per-pair `score` path (no cache), thresholded.
        let reference = SimilarityGraph::new(candidates.iter().filter_map(|pair| {
            let s = m.score(coll.get(pair.first), coll.get(pair.second));
            (s >= m.threshold()).then_some((*pair, s))
        }));
        let cached = m.match_pairs(&coll, candidates);
        assert_eq!(reference, cached);
    }

    #[test]
    fn rules_with_missing_attributes_renormalize() {
        let coll = collection();
        let m = WeightedRuleMatcher::new(
            vec![
                WeightedRule {
                    attribute_a: "name".to_string(),
                    attribute_b: "title".to_string(),
                    measure: SimilarityMeasure::Jaccard,
                    weight: 1.0,
                },
                WeightedRule {
                    attribute_a: "nonexistent".to_string(),
                    attribute_b: "also-missing".to_string(),
                    measure: SimilarityMeasure::Jaccard,
                    weight: 100.0,
                },
            ],
            0.2,
        );
        let s = m.score(coll.get(ProfileId(0)), coll.get(ProfileId(2)));
        assert!(s > 0.0, "missing rule must not zero the score");
    }

    #[test]
    fn tfidf_matcher_works_as_matcher() {
        let coll = collection();
        let m = TfIdfMatcher::new(&coll, 0.2);
        let g = m.match_pairs(&coll, all_candidates(&coll));
        assert!(g.pairs().contains(&Pair::new(ProfileId(0), ProfileId(2))));
        assert!(!g.pairs().contains(&Pair::new(ProfileId(1), ProfileId(3))));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        ThresholdMatcher::new(SimilarityMeasure::Jaccard, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rules_rejected() {
        WeightedRuleMatcher::new(vec![], 0.5);
    }
}
