//! Fused streaming scorer: consume pruned candidate pairs as the pruning
//! stage emits them.
//!
//! [`ThresholdMatcher::score_stream`] is the matcher half of the fused
//! prune→score pipeline: the caller supplies pruning morsels and a
//! `produce` closure that turns one morsel into its sorted `(pair,
//! weight)` batch (in practice
//! `sparker_metablocking::StreamingMetaBlocking::prune_range`), and the
//! matcher's filter–verify cascade scores each batch as soon as it lands
//! in the bounded channel — pruning and matching overlap on the same
//! worker pool via [`sparker_dataflow::pipelined_stage`].
//!
//! Scoring a pair is a pure function of the pair (the per-worker scratch
//! is reusable buffers, not state), and scored shards keep their morsel
//! index, so the assembled [`SimilarityGraph`] is byte-identical to the
//! staged `prune-everything-then-score` path at any worker count and any
//! channel capacity. Shards arrive sorted (each morsel is a contiguous
//! ascending node range emitting forward edges in ascending pair order),
//! so assembly is [`SimilarityGraph::from_sorted_shards`] — the same
//! strictly-ascending merge the staged pool matcher uses, no re-sort.

use crate::graph::SimilarityGraph;
use crate::matcher::{FilterStats, PreparedProfile, ThresholdMatcher};
use crate::similarity::MatchScratch;
use sparker_dataflow::{pipelined_stage, Context, FusedStageStats, WorkerLocal};
use sparker_profiles::{Pair, ProfileCollection};
use std::sync::Arc;

/// Everything one fused prune→score run produces.
pub struct FusedMatchOutcome {
    /// The scored matches, identical to the staged matcher's output.
    pub similarity: SimilarityGraph,
    /// The pruned candidate pairs with their meta-blocking weights, in
    /// ascending pair order — identical to the staged pruning output
    /// (flattened from the producer payloads after the batch, so the full
    /// list exists only once scoring is already done).
    pub retained: Vec<(Pair, f64)>,
    /// Merged cascade statistics across all workers.
    pub stats: FilterStats,
    /// Overlap accounting for the fused stage (produce vs consume busy,
    /// queue wait, backpressure).
    pub report: FusedStageStats,
}

impl ThresholdMatcher {
    /// Score pruned candidates as they stream out of `produce`, overlapped
    /// on the context's worker pool (see the module docs). `capacity`
    /// bounds the channel of unscored batches;
    /// [`sparker_dataflow::fused_channel_capacity`] gives a
    /// `MemBudget`-aware default. Results are independent of both the
    /// worker count and `capacity`.
    pub fn score_stream<M, F>(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
        morsels: &[M],
        capacity: usize,
        produce: F,
    ) -> FusedMatchOutcome
    where
        M: Sync,
        F: Fn(usize, &M) -> Vec<(Pair, f64)> + Send + Sync,
    {
        let prepared = ctx.broadcast(PreparedProfile::prepare_all(collection));
        let matcher = self.clone();
        let locals = Arc::new(WorkerLocal::new(ctx.workers(), || {
            (MatchScratch::default(), FilterStats::default())
        }));
        let consume_locals = Arc::clone(&locals);
        let (produced, scored_shards, report) = pipelined_stage(
            ctx,
            "fused_prune_score",
            morsels,
            capacity,
            produce,
            move |worker, batch: &Vec<(Pair, f64)>| {
                consume_locals.with(worker, |(scratch, stats)| {
                    batch
                        .iter()
                        .filter_map(|&(pair, _)| {
                            matcher
                                .decide(
                                    &prepared[pair.first.index()],
                                    &prepared[pair.second.index()],
                                    scratch,
                                    stats,
                                )
                                .map(|score| (pair, score))
                        })
                        .collect::<Vec<_>>()
                })
            },
        );
        let similarity = SimilarityGraph::from_sorted_shards(scored_shards);
        let retained: Vec<(Pair, f64)> = produced.into_iter().flatten().collect();
        let stats = match Arc::try_unwrap(locals) {
            Ok(locals) => {
                let mut merged = FilterStats::default();
                for (_, slot) in locals.into_inner() {
                    merged.merge(&slot);
                }
                merged
            }
            Err(_) => FilterStats::default(),
        };
        FusedMatchOutcome {
            similarity,
            retained,
            stats,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{Matcher, SimilarityMeasure};
    use sparker_profiles::{Profile, ProfileId, SourceId};

    fn collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", format!("alpha{} beta{} gamma", i % 5, i % 3))
                        .build()
                })
                .collect(),
        )
    }

    /// All forward pairs cut into `chunks` sorted morsels.
    fn pair_morsels(n: u32, chunks: usize) -> Vec<Vec<(Pair, f64)>> {
        let all: Vec<(Pair, f64)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (Pair::new(ProfileId(a), ProfileId(b)), 1.0)))
            .collect();
        let per = all.len().div_ceil(chunks.max(1)).max(1);
        all.chunks(per).map(<[_]>::to_vec).collect()
    }

    #[test]
    fn score_stream_matches_staged_matcher() {
        let coll = collection(40);
        let matcher = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.5);
        let morsels = pair_morsels(40, 9);
        let staged = matcher.match_pairs(&coll, morsels.iter().flatten().map(|&(p, _)| p));
        for workers in [1, 2, 4] {
            for capacity in [1, 2, 1 << 20] {
                let ctx = Context::new(workers);
                let out = matcher.score_stream(&ctx, &coll, &morsels, capacity, |_, m| m.clone());
                assert_eq!(
                    out.similarity.edges(),
                    staged.edges(),
                    "workers={workers} capacity={capacity}"
                );
                assert_eq!(
                    out.retained.len(),
                    morsels.iter().map(Vec::len).sum::<usize>()
                );
                assert!(out.stats.pairs > 0);
                assert_eq!(out.report.morsels, morsels.len());
            }
        }
    }

    #[test]
    fn score_stream_empty_input() {
        let coll = collection(4);
        let matcher = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.5);
        let morsels: Vec<Vec<(Pair, f64)>> = Vec::new();
        let ctx = Context::new(2);
        let out = matcher.score_stream(&ctx, &coll, &morsels, 4, |_, m: &Vec<_>| m.clone());
        assert!(out.similarity.edges().is_empty());
        assert!(out.retained.is_empty());
    }
}
