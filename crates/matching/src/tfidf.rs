//! TF-IDF weighted cosine similarity over profile token bags.
//!
//! Stands in for corpus-level semantic measures (the paper mentions CSA):
//! tokens shared by many profiles (brand names, units) contribute little,
//! rare tokens (model numbers) a lot.

use sparker_profiles::{tokenize, Profile, ProfileCollection, ProfileId};
use std::collections::{BTreeMap, HashMap};

/// Inverse-document-frequency index over a profile collection.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    idf: HashMap<String, f64>,
    /// Pre-computed weighted vectors per profile (token → tf·idf), plus
    /// vector norms. Sorted maps so norms and dot products sum in a fixed
    /// order (floating-point determinism).
    vectors: Vec<BTreeMap<String, f64>>,
    norms: Vec<f64>,
}

impl TfIdfIndex {
    /// Build the index: IDF = ln(N / df), TF = raw count within the
    /// profile's concatenated values.
    pub fn build(collection: &ProfileCollection) -> Self {
        let n = collection.len();
        let mut df: HashMap<String, u64> = HashMap::new();
        let mut tfs: Vec<HashMap<String, u64>> = Vec::with_capacity(n);
        for p in collection.profiles() {
            let mut tf: HashMap<String, u64> = HashMap::new();
            for a in &p.attributes {
                for t in tokenize(&a.value) {
                    *tf.entry(t).or_insert(0) += 1;
                }
            }
            for t in tf.keys() {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
            tfs.push(tf);
        }
        let idf: HashMap<String, f64> = df
            .into_iter()
            .map(|(t, d)| (t, (n as f64 / d as f64).ln()))
            .collect();
        let vectors: Vec<BTreeMap<String, f64>> = tfs
            .into_iter()
            .map(|tf| {
                tf.into_iter()
                    .map(|(t, c)| {
                        let w = c as f64 * idf.get(&t).copied().unwrap_or(0.0);
                        (t, w)
                    })
                    .collect()
            })
            .collect();
        let norms = vectors
            .iter()
            .map(|v| v.values().map(|w| w * w).sum::<f64>().sqrt())
            .collect();
        TfIdfIndex { idf, vectors, norms }
    }

    /// IDF of a token (0 for unseen tokens).
    pub fn idf(&self, token: &str) -> f64 {
        self.idf.get(token).copied().unwrap_or(0.0)
    }

    /// TF-IDF cosine similarity of two profiles of the indexed collection.
    pub fn cosine(&self, a: ProfileId, b: ProfileId) -> f64 {
        let (va, vb) = (&self.vectors[a.index()], &self.vectors[b.index()]);
        let (na, nb) = (self.norms[a.index()], self.norms[b.index()]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Iterate the smaller vector.
        let (small, large) = if va.len() <= vb.len() { (va, vb) } else { (vb, va) };
        let dot: f64 = small
            .iter()
            .filter_map(|(t, w)| large.get(t).map(|w2| w * w2))
            .sum();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// Score a pair by profile reference (must belong to the indexed
    /// collection).
    pub fn cosine_profiles(&self, a: &Profile, b: &Profile) -> f64 {
        self.cosine(a.id, b.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::SourceId;

    fn collection() -> ProfileCollection {
        let rows = [
            "sony bravia kdl40 tv",
            "sony bravia kdl40 television",
            "sony walkman nwz player",
            "samsung galaxy s9 phone",
            "samsung galaxy s9 smartphone",
            "generic usb cable",
        ];
        ProfileCollection::dirty(
            rows.iter()
                .enumerate()
                .map(|(i, r)| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", *r)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn duplicates_score_higher_than_same_brand() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        let dup = idx.cosine(ProfileId(0), ProfileId(1));
        let same_brand = idx.cosine(ProfileId(0), ProfileId(2));
        let unrelated = idx.cosine(ProfileId(0), ProfileId(5));
        assert!(dup > same_brand, "{dup} vs {same_brand}");
        assert!(same_brand > unrelated, "{same_brand} vs {unrelated}");
        assert_eq!(unrelated, 0.0);
    }

    #[test]
    fn rare_tokens_outweigh_common_ones() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        assert!(idx.idf("kdl40") > idx.idf("sony"));
        assert_eq!(idx.idf("unseen-token"), 0.0);
    }

    #[test]
    fn self_similarity_is_one() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        for p in coll.profiles() {
            let s = idx.cosine(p.id, p.id);
            assert!((s - 1.0).abs() < 1e-9, "self cosine {s}");
        }
    }

    #[test]
    fn blank_profiles_score_zero() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a").build(),
            Profile::builder(SourceId(0), "b").attr("n", "thing").build(),
        ]);
        let idx = TfIdfIndex::build(&coll);
        assert_eq!(idx.cosine(ProfileId(0), ProfileId(1)), 0.0);
    }

    #[test]
    fn symmetric() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        assert_eq!(
            idx.cosine(ProfileId(0), ProfileId(3)),
            idx.cosine(ProfileId(3), ProfileId(0))
        );
    }
}
