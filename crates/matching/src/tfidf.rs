//! TF-IDF weighted cosine similarity over profile token bags.
//!
//! Stands in for corpus-level semantic measures (the paper mentions CSA):
//! tokens shared by many profiles (brand names, units) contribute little,
//! rare tokens (model numbers) a lot.
//!
//! Tokens are interned through a [`TokenDict`], so per-profile vectors are
//! sorted `Vec<(TokenId, f64)>` slices and the cosine is a merge-join over
//! two id-sorted runs — no string hashing or tree walks on the probe path.
//! Token ids are assigned in lexicographic token order, so the merge sums
//! weights in the same order the previous `BTreeMap` representation did
//! (floating-point determinism preserved).

use sparker_profiles::{each_token, DictBuilder, Profile, ProfileCollection, ProfileId, TokenDict};

/// Inverse-document-frequency index over a profile collection.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    dict: TokenDict,
    /// IDF per token id.
    idf: Vec<f64>,
    /// Pre-computed weighted vectors per profile: `(token id, tf·idf)`
    /// sorted by id, plus vector norms. Id order == lexicographic token
    /// order, so sums run in a fixed order.
    vectors: Vec<Vec<(u32, f64)>>,
    norms: Vec<f64>,
}

impl TfIdfIndex {
    /// Build the index: IDF = ln(N / df), TF = raw count within the
    /// profile's concatenated values.
    ///
    /// Single pass over the collection: tokens are interned to provisional
    /// ids *while* each profile's occurrence list is recorded, then the
    /// lists are remapped through [`DictBuilder::finish`]'s permutation to
    /// final lexicographic ids and run-length-encoded into (id, count)
    /// runs. The collection is tokenized exactly once.
    pub fn build(collection: &ProfileCollection) -> Self {
        let n = collection.len();
        let mut builder = DictBuilder::new();
        let mut scratch = String::new();

        // Per-profile token occurrences as provisional interner ids.
        let mut occurrences: Vec<Vec<u32>> = Vec::with_capacity(n);
        for p in collection.profiles() {
            let mut ids: Vec<u32> = Vec::new();
            for a in &p.attributes {
                each_token(&a.value, &mut scratch, |t| ids.push(builder.intern(t)));
            }
            occurrences.push(ids);
        }
        let (dict, perm) = builder.finish();
        let mut df = vec![0u64; dict.len()];

        // Remap to lexicographic ids, sort, run-length encode.
        let mut tfs: Vec<Vec<(u32, u64)>> = Vec::with_capacity(n);
        for mut ids in occurrences {
            for id in &mut ids {
                *id = perm[*id as usize];
            }
            ids.sort_unstable();
            let mut tf: Vec<(u32, u64)> = Vec::new();
            for &id in ids.iter() {
                match tf.last_mut() {
                    Some((last, c)) if *last == id => *c += 1,
                    _ => tf.push((id, 1)),
                }
            }
            for &(id, _) in &tf {
                df[id as usize] += 1;
            }
            tfs.push(tf);
        }

        let idf: Vec<f64> = df
            .iter()
            .map(|&d| {
                if d == 0 {
                    0.0
                } else {
                    (n as f64 / d as f64).ln()
                }
            })
            .collect();
        let vectors: Vec<Vec<(u32, f64)>> = tfs
            .into_iter()
            .map(|tf| {
                tf.into_iter()
                    .map(|(id, c)| (id, c as f64 * idf[id as usize]))
                    .collect()
            })
            .collect();
        let norms = vectors
            .iter()
            .map(|v| v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt())
            .collect();
        TfIdfIndex {
            dict,
            idf,
            vectors,
            norms,
        }
    }

    /// IDF of a token (0 for unseen tokens).
    pub fn idf(&self, token: &str) -> f64 {
        self.dict
            .lookup(token)
            .map_or(0.0, |id| self.idf[id.index()])
    }

    /// The token dictionary the index was built over.
    pub fn dict(&self) -> &TokenDict {
        &self.dict
    }

    /// TF-IDF cosine similarity of two profiles of the indexed collection.
    ///
    /// Merge-join of the two id-sorted vectors: O(|a| + |b|) comparisons,
    /// no hashing.
    pub fn cosine(&self, a: ProfileId, b: ProfileId) -> f64 {
        let (va, vb) = (&self.vectors[a.index()], &self.vectors[b.index()]);
        let (na, nb) = (self.norms[a.index()], self.norms[b.index()]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < va.len() && j < vb.len() {
            let (ta, wa) = va[i];
            let (tb, wb) = vb[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// Score a pair by profile reference (must belong to the indexed
    /// collection).
    pub fn cosine_profiles(&self, a: &Profile, b: &Profile) -> f64 {
        self.cosine(a.id, b.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::SourceId;

    fn collection() -> ProfileCollection {
        let rows = [
            "sony bravia kdl40 tv",
            "sony bravia kdl40 television",
            "sony walkman nwz player",
            "samsung galaxy s9 phone",
            "samsung galaxy s9 smartphone",
            "generic usb cable",
        ];
        ProfileCollection::dirty(
            rows.iter()
                .enumerate()
                .map(|(i, r)| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", *r)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn duplicates_score_higher_than_same_brand() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        let dup = idx.cosine(ProfileId(0), ProfileId(1));
        let same_brand = idx.cosine(ProfileId(0), ProfileId(2));
        let unrelated = idx.cosine(ProfileId(0), ProfileId(5));
        assert!(dup > same_brand, "{dup} vs {same_brand}");
        assert!(same_brand > unrelated, "{same_brand} vs {unrelated}");
        assert_eq!(unrelated, 0.0);
    }

    #[test]
    fn rare_tokens_outweigh_common_ones() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        assert!(idx.idf("kdl40") > idx.idf("sony"));
        assert_eq!(idx.idf("unseen-token"), 0.0);
    }

    #[test]
    fn self_similarity_is_one() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        for p in coll.profiles() {
            let s = idx.cosine(p.id, p.id);
            assert!((s - 1.0).abs() < 1e-9, "self cosine {s}");
        }
    }

    #[test]
    fn blank_profiles_score_zero() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a").build(),
            Profile::builder(SourceId(0), "b")
                .attr("n", "thing")
                .build(),
        ]);
        let idx = TfIdfIndex::build(&coll);
        assert_eq!(idx.cosine(ProfileId(0), ProfileId(1)), 0.0);
    }

    #[test]
    fn symmetric() {
        let coll = collection();
        let idx = TfIdfIndex::build(&coll);
        assert_eq!(
            idx.cosine(ProfileId(0), ProfileId(3)),
            idx.cosine(ProfileId(3), ProfileId(0))
        );
    }

    #[test]
    fn repeated_tokens_raise_tf() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a")
                .attr("n", "rare rare rare common")
                .build(),
            Profile::builder(SourceId(0), "b")
                .attr("n", "rare common")
                .build(),
            Profile::builder(SourceId(0), "c")
                .attr("n", "common other")
                .build(),
        ]);
        let idx = TfIdfIndex::build(&coll);
        // "rare" (df 2 of 3) carries weight; tf 3 in profile a.
        assert!(idx.cosine(ProfileId(0), ProfileId(1)) > idx.cosine(ProfileId(1), ProfileId(2)));
        assert!(idx.dict().lookup("rare").is_some());
    }
}
