//! Similarity and distance measures on token sets and strings.
//!
//! All measures return values in `[0, 1]` with 1 = identical for non-empty
//! inputs, so matchers can swap them freely under a common threshold
//! semantics. Empty inputs are where the measures disagree, and each
//! function documents its own convention:
//!
//! - [`jaccard`], [`dice`]: empty-vs-empty scores **0** (no shared
//!   evidence), empty-vs-non-empty scores 0.
//! - [`overlap`], [`cosine_tokens`]: **0** whenever either side is empty
//!   (the denominator would vanish).
//! - [`levenshtein_similarity`], [`jaro`], [`jaro_winkler`],
//!   [`monge_elkan`]: empty-vs-empty scores **1** (zero edits apart),
//!   empty-vs-non-empty scores 0 (except `levenshtein_similarity`, which
//!   degrades smoothly: `1 − |b|/|b| = 0`).
//!
//! The token-set measures come in two shapes: `BTreeSet<String>` versions
//! for ad-hoc use, and sorted-`u32` id-slice versions (`*_ids`) that the
//! batch matchers drive off interned [`PreparedProfile`] token views —
//! merge-joins over dense ids instead of re-comparing full strings per
//! pair. Both shapes funnel into shared `*_counts` kernels so their float
//! arithmetic is identical bit for bit.
//!
//! [`PreparedProfile`]: crate::PreparedProfile

use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Token-set measures.
// ---------------------------------------------------------------------------

/// Jaccard similarity `|A∩B| / |A∪B|`. Empty-vs-empty is 0 (no evidence).
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    jaccard_counts(a.intersection(b).count(), a.len(), b.len())
}

/// Dice coefficient `2|A∩B| / (|A| + |B|)`. Empty-vs-empty is 0.
pub fn dice(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    dice_counts(a.intersection(b).count(), a.len(), b.len())
}

/// Overlap coefficient `|A∩B| / min(|A|, |B|)`. 0 if either side is empty.
pub fn overlap(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    overlap_counts(a.intersection(b).count(), a.len(), b.len())
}

/// Cosine similarity of the binary token vectors:
/// `|A∩B| / sqrt(|A|·|B|)`. 0 if either side is empty.
pub fn cosine_tokens(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    cosine_counts(a.intersection(b).count(), a.len(), b.len())
}

// ---------------------------------------------------------------------------
// Count-based kernels: one implementation of each set-measure formula, used
// by both the `BTreeSet` and the interned id-slice entry points (and by the
// matcher's bound computation, which must agree with them exactly).
// ---------------------------------------------------------------------------

/// [`jaccard`] from an intersection count and the two set sizes.
#[inline]
pub fn jaccard_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 0.0;
    }
    inter as f64 / (la + lb - inter) as f64
}

/// [`dice`] from an intersection count and the two set sizes.
#[inline]
pub fn dice_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 0.0;
    }
    2.0 * inter as f64 / (la + lb) as f64
}

/// [`overlap`] from an intersection count and the two set sizes.
#[inline]
pub fn overlap_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / la.min(lb) as f64
}

/// [`cosine_tokens`] from an intersection count and the two set sizes.
#[inline]
pub fn cosine_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / ((la as f64) * (lb as f64)).sqrt()
}

// ---------------------------------------------------------------------------
// Interned id-slice measures: allocation-free merge-joins over sorted,
// deduplicated token-id vectors.
// ---------------------------------------------------------------------------

/// Size of the intersection of two sorted, deduplicated id slices.
pub fn intersect_ids(a: &[u32], b: &[u32]) -> usize {
    intersect_ids_at_least(a, b, 0).expect("need = 0 always reachable")
}

/// Early-exit intersection: `Some(|A∩B|)` iff the intersection size reaches
/// `need`, `None` as soon as even matching every remaining element could
/// not. Both slices must be sorted and deduplicated.
pub fn intersect_ids_at_least(a: &[u32], b: &[u32], need: usize) -> Option<usize> {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        // Abandon once the remaining elements cannot close the gap.
        if inter + (a.len() - i).min(b.len() - j) < need {
            return None;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (inter >= need).then_some(inter)
}

/// [`jaccard`] over sorted interned token ids.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    jaccard_counts(intersect_ids(a, b), a.len(), b.len())
}

/// [`dice`] over sorted interned token ids.
pub fn dice_ids(a: &[u32], b: &[u32]) -> f64 {
    dice_counts(intersect_ids(a, b), a.len(), b.len())
}

/// [`overlap`] over sorted interned token ids.
pub fn overlap_ids(a: &[u32], b: &[u32]) -> f64 {
    overlap_counts(intersect_ids(a, b), a.len(), b.len())
}

/// [`cosine_tokens`] over sorted interned token ids.
pub fn cosine_ids(a: &[u32], b: &[u32]) -> f64 {
    cosine_counts(intersect_ids(a, b), a.len(), b.len())
}

// ---------------------------------------------------------------------------
// String (edit-based) measures.
// ---------------------------------------------------------------------------

/// Reusable buffers for [`levenshtein_with`]: the decoded char runs and the
/// two DP rows. One `EditScratch` per worker slot keeps the batch matchers'
/// edit-distance inner loop allocation-free after warm-up.
#[derive(Debug, Clone, Default)]
pub struct EditScratch {
    a: Vec<char>,
    b: Vec<char>,
    prev: Vec<usize>,
    curr: Vec<usize>,
}

impl EditScratch {
    /// Decode both strings into the char buffers (the single decode all
    /// entry points share).
    fn decode(&mut self, a: &str, b: &str) {
        self.a.clear();
        self.a.extend(a.chars());
        self.b.clear();
        self.b.extend(b.chars());
    }
}

/// Levenshtein edit distance (two-row dynamic program, O(|a|·|b|) time,
/// O(min) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(a, b, &mut EditScratch::default())
}

/// [`levenshtein`] over caller-provided buffers — identical result, no
/// allocation once the scratch has grown to the working size.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut EditScratch) -> usize {
    scratch.decode(a, b);
    lev_full(scratch)
}

/// The full (unbanded) DP over already-decoded buffers.
fn lev_full(scratch: &mut EditScratch) -> usize {
    let EditScratch {
        a: ca,
        b: cb,
        prev,
        curr,
    } = scratch;
    let (short, long) = if ca.len() <= cb.len() {
        (&*ca, &*cb)
    } else {
        (&*cb, &*ca)
    };
    if short.is_empty() {
        return long.len();
    }
    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity: `1 − distance / max(|a|, |b|)`; 1 for two empty
/// strings, 0 when one side is empty and the other is not.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    levenshtein_similarity_with(a, b, &mut EditScratch::default())
}

/// [`levenshtein_similarity`] over caller-provided buffers.
pub fn levenshtein_similarity_with(a: &str, b: &str, scratch: &mut EditScratch) -> f64 {
    // Single decode: max length falls out of the char buffers instead of a
    // second `chars().count()` pass over both strings.
    scratch.decode(a, b);
    let max_len = scratch.a.len().max(scratch.b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - lev_full(scratch) as f64 / max_len as f64
}

/// Banded Levenshtein with early abandon: `Some(d)` iff the edit distance
/// `d` is at most `budget`, `None` otherwise (decided without completing
/// the DP whenever a full row exceeds the budget). O(min(|a|,|b|)·budget)
/// time instead of O(|a|·|b|).
pub fn levenshtein_within(a: &str, b: &str, budget: usize) -> Option<usize> {
    levenshtein_within_with(a, b, budget, &mut EditScratch::default())
}

/// [`levenshtein_within`] over caller-provided buffers.
pub fn levenshtein_within_with(
    a: &str,
    b: &str,
    budget: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    scratch.decode(a, b);
    lev_banded(scratch, budget)
}

/// Banded DP over already-decoded buffers. Cells with `|i − j| > k` cannot
/// lie on a path of cost ≤ k, so each row only evaluates a `2k + 1` window;
/// `INF` sentinels seal the window edges and a row whose minimum exceeds
/// the budget abandons the whole computation.
fn lev_banded(scratch: &mut EditScratch, k: usize) -> Option<usize> {
    const INF: usize = usize::MAX / 2;
    let n = scratch.a.len().min(scratch.b.len());
    let m = scratch.a.len().max(scratch.b.len());
    if m - n > k {
        return None; // length difference alone exceeds the budget
    }
    if n == 0 {
        return Some(m); // m ≤ k by the check above
    }
    // A band of half-width k only skips work when it is narrower than a
    // row: at 2k + 1 > n the window covers every column and the sentinel
    // bookkeeping just drags on the tight full-DP loop (measurably — low
    // thresholds give budgets past half the string). Same
    // `Some(d) iff d ≤ k` answer either way.
    if 2 * k >= n {
        let d = lev_full(scratch);
        return (d <= k).then_some(d);
    }
    let EditScratch {
        a: ca,
        b: cb,
        prev,
        curr,
    } = scratch;
    let (short, long) = if ca.len() <= cb.len() {
        (&*ca, &*cb)
    } else {
        (&*cb, &*ca)
    };
    prev.clear();
    prev.resize(n + 1, INF);
    curr.clear();
    curr.resize(n + 1, INF);
    for (j, slot) in prev.iter_mut().take(n.min(k) + 1).enumerate() {
        *slot = j;
    }
    for i in 1..=m {
        let lo = i.saturating_sub(k);
        if lo > n {
            return None;
        }
        let hi = (i + k).min(n);
        if lo > 0 {
            curr[lo - 1] = INF; // seal the left window edge for the ins read
        }
        let mut row_min = INF;
        for j in lo..=hi {
            let v = if j == 0 {
                i
            } else {
                let sub = prev[j - 1].saturating_add(usize::from(long[i - 1] != short[j - 1]));
                let del = prev[j].saturating_add(1);
                let ins = curr[j - 1].saturating_add(1);
                sub.min(del).min(ins)
            };
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if hi < n {
            curr[hi + 1] = INF; // seal the right edge for the next row's del read
        }
        if row_min > k {
            return None;
        }
        std::mem::swap(prev, curr);
    }
    (prev[n] <= k).then_some(prev[n])
}

// ---------------------------------------------------------------------------
// Jaro / Jaro–Winkler / Monge–Elkan.
// ---------------------------------------------------------------------------

/// Buffers for one [`jaro`] evaluation: decoded chars, the taken-flags of
/// the second string and the two match sequences.
#[derive(Debug, Clone, Default)]
struct JaroScratch {
    a: Vec<char>,
    b: Vec<char>,
    taken: Vec<bool>,
    matches_a: Vec<char>,
    matches_b: Vec<char>,
}

/// Reusable buffers for the string-measure kernels: edit-distance rows,
/// Jaro match bookkeeping and the Monge–Elkan lowercase token arenas. One
/// `MatchScratch` per worker slot makes batch scoring allocation-free after
/// warm-up; the free functions ([`jaro`], [`monge_elkan`], …) are thin
/// wrappers over the `_with` variants with a fresh scratch, so both paths
/// produce bit-identical scores.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Levenshtein buffers (shared with [`levenshtein_with`] and friends).
    pub edit: EditScratch,
    jaro: JaroScratch,
    arena_a: String,
    spans_a: Vec<(u32, u32)>,
    arena_b: String,
    spans_b: Vec<(u32, u32)>,
}

/// Jaro similarity. 1 for two empty strings, 0 when exactly one is empty.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_core(a, b, &mut JaroScratch::default())
}

/// [`jaro`] over caller-provided buffers.
pub fn jaro_with(a: &str, b: &str, scratch: &mut MatchScratch) -> f64 {
    jaro_core(a, b, &mut scratch.jaro)
}

fn jaro_core(a: &str, b: &str, scratch: &mut JaroScratch) -> f64 {
    let JaroScratch {
        a: ca,
        b: cb,
        taken,
        matches_a,
        matches_b,
    } = scratch;
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let window = (ca.len().max(cb.len()) / 2).saturating_sub(1);
    taken.clear();
    taken.resize(cb.len(), false);
    matches_a.clear();
    for (i, &cha) in ca.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(cb.len());
        for j in lo..hi {
            if !taken[j] && cb[j] == cha {
                taken[j] = true;
                matches_a.push(cha);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    matches_b.clear();
    matches_b.extend(
        cb.iter()
            .zip(taken.iter())
            .filter(|(_, &t)| t)
            .map(|(&c, _)| c),
    );
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / ca.len() as f64 + m / cb.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity (prefix scale 0.1, max prefix 4). The Winkler
/// prefix boost only applies when the Jaro score exceeds the canonical 0.7
/// boost threshold — below it the score is plain Jaro, so dissimilar
/// strings that merely share a prefix are not inflated. Empty semantics
/// follow [`jaro`].
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_core(a, b, &mut JaroScratch::default())
}

/// [`jaro_winkler`] over caller-provided buffers.
pub fn jaro_winkler_with(a: &str, b: &str, scratch: &mut MatchScratch) -> f64 {
    jaro_winkler_core(a, b, &mut scratch.jaro)
}

fn jaro_winkler_core(a: &str, b: &str, scratch: &mut JaroScratch) -> f64 {
    let j = jaro_core(a, b, scratch);
    if j <= 0.7 {
        return j;
    }
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Append the lowercase form of `tok` to `arena`. Pure-ASCII tokens (the
/// overwhelmingly common case) are folded byte-wise with no allocation;
/// anything else defers to `str::to_lowercase` for exact Unicode casing,
/// including its context-sensitive mappings.
fn push_lower(arena: &mut String, tok: &str) {
    if tok.is_ascii() {
        arena.extend(tok.bytes().map(|b| b.to_ascii_lowercase() as char));
    } else {
        let low = tok.to_lowercase();
        arena.push_str(&low);
    }
}

/// Split `text` on whitespace and lowercase every token once into `arena`,
/// recording each token's byte span.
fn fill_lower(arena: &mut String, spans: &mut Vec<(u32, u32)>, text: &str) {
    arena.clear();
    spans.clear();
    for tok in text.split_whitespace() {
        let start = arena.len() as u32;
        push_lower(arena, tok);
        spans.push((start, arena.len() as u32));
    }
}

/// Monge–Elkan similarity: for each token of the shorter side, the best
/// Jaro–Winkler match on the other side, averaged; on equal token counts,
/// the better of the two directions (making the measure symmetric, a
/// property the matcher-level tests pin). Robust to token reordering
/// ("Sony Bravia TV" vs "TV Sony BRAVIA"). 1 for two empty (or
/// all-whitespace) strings, 0 when exactly one is empty.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    monge_elkan_with(a, b, &mut MatchScratch::default())
}

/// [`monge_elkan`] over caller-provided buffers.
pub fn monge_elkan_with(a: &str, b: &str, scratch: &mut MatchScratch) -> f64 {
    // Lowercase every token exactly once up front; the former per-pair
    // inner-loop `to_lowercase` cost two heap allocations per token
    // comparison, O(|ta|·|tb|) of them.
    let MatchScratch {
        jaro,
        arena_a,
        spans_a,
        arena_b,
        spans_b,
        ..
    } = scratch;
    fill_lower(arena_a, spans_a, a);
    fill_lower(arena_b, spans_b, b);
    if spans_a.is_empty() && spans_b.is_empty() {
        return 1.0;
    }
    if spans_a.is_empty() || spans_b.is_empty() {
        return 0.0;
    }
    fn directed(
        outer: &[(u32, u32)],
        oa: &str,
        inner: &[(u32, u32)],
        ia: &str,
        jaro: &mut JaroScratch,
    ) -> f64 {
        let mut sum = 0.0;
        for &(s, e) in outer {
            let x = &oa[s as usize..e as usize];
            let mut best = 0.0f64;
            for &(s2, e2) in inner {
                best = best.max(jaro_winkler_core(x, &ia[s2 as usize..e2 as usize], jaro));
            }
            sum += best;
        }
        sum / outer.len() as f64
    }
    match spans_a.len().cmp(&spans_b.len()) {
        std::cmp::Ordering::Less => directed(spans_a, arena_a, spans_b, arena_b, jaro),
        std::cmp::Ordering::Greater => directed(spans_b, arena_b, spans_a, arena_a, jaro),
        std::cmp::Ordering::Equal => directed(spans_a, arena_a, spans_b, arena_b, jaro)
            .max(directed(spans_b, arena_b, spans_a, arena_a, jaro)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_cases() {
        assert_eq!(jaccard(&set(&["a", "b"]), &set(&["b", "c"])), 1.0 / 3.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["a"])), 1.0);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 0.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
    }

    #[test]
    fn dice_overlap_cosine_cases() {
        let (a, b) = (set(&["a", "b", "c"]), set(&["b", "c", "d"]));
        assert!((dice(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((overlap(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine_tokens(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        // Subset: overlap saturates at 1.
        let sub = set(&["a", "b"]);
        assert_eq!(overlap(&a, &sub), 1.0);
        assert!(dice(&a, &sub) < 1.0);
        assert_eq!(overlap(&a, &set(&[])), 0.0);
        assert_eq!(cosine_tokens(&set(&[]), &b), 0.0);
    }

    #[test]
    fn measures_bounded_and_symmetric() {
        let sets = [set(&["x"]), set(&["x", "y"]), set(&["z"]), set(&[])];
        for a in &sets {
            for b in &sets {
                for f in [jaccard, dice, overlap, cosine_tokens] {
                    let s = f(a, b);
                    assert!((0.0..=1.0).contains(&s));
                    assert_eq!(s, f(b, a));
                }
            }
        }
    }

    #[test]
    fn empty_input_semantics_per_measure() {
        // Set measures: empty-vs-empty is 0 for jaccard/dice (explicit
        // special case) and 0 for overlap/cosine (vanishing denominator).
        for f in [jaccard, dice, overlap, cosine_tokens] {
            assert_eq!(f(&set(&[]), &set(&[])), 0.0);
            assert_eq!(f(&set(&["a"]), &set(&[])), 0.0);
        }
        // String measures: empty-vs-empty is 1.
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(
            monge_elkan("   ", ""),
            1.0,
            "all-whitespace tokenizes empty"
        );
        // Empty vs non-empty is 0 for all string measures.
        assert_eq!(levenshtein_similarity("", "abc"), 0.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro_winkler("", "abc"), 0.0);
        assert_eq!(monge_elkan("", "abc"), 0.0);
    }

    #[test]
    fn id_measures_match_string_measures() {
        // The id-slice kernels must agree bit for bit with the BTreeSet
        // versions under any injective token → id mapping.
        let cases: &[(&[&str], &[&str])] = &[
            (&["a", "b", "c"], &["b", "c", "d"]),
            (&["a"], &["a"]),
            (&[], &[]),
            (&["a"], &[]),
            (&["x", "y", "z"], &["q"]),
        ];
        for (ta, tb) in cases {
            let (sa, sb) = (set(ta), set(tb));
            // Map token -> id by position in the sorted union.
            let union: Vec<&String> = sa.union(&sb).collect();
            let id_of = |t: &String| union.iter().position(|u| *u == t).unwrap() as u32;
            let ia: Vec<u32> = sa.iter().map(id_of).collect();
            let ib: Vec<u32> = sb.iter().map(id_of).collect();
            let mut ia = ia;
            let mut ib = ib;
            ia.sort_unstable();
            ib.sort_unstable();
            assert_eq!(jaccard_ids(&ia, &ib).to_bits(), jaccard(&sa, &sb).to_bits());
            assert_eq!(dice_ids(&ia, &ib).to_bits(), dice(&sa, &sb).to_bits());
            assert_eq!(overlap_ids(&ia, &ib).to_bits(), overlap(&sa, &sb).to_bits());
            assert_eq!(
                cosine_ids(&ia, &ib).to_bits(),
                cosine_tokens(&sa, &sb).to_bits()
            );
        }
    }

    #[test]
    fn intersect_at_least_early_exit_and_exact_count() {
        let a: Vec<u32> = vec![1, 3, 5, 7, 9];
        let b: Vec<u32> = vec![3, 4, 5, 6, 9];
        assert_eq!(intersect_ids(&a, &b), 3);
        for need in 0..=3 {
            assert_eq!(intersect_ids_at_least(&a, &b, need), Some(3));
        }
        assert_eq!(intersect_ids_at_least(&a, &b, 4), None);
        assert_eq!(intersect_ids_at_least(&[], &[], 0), Some(0));
        assert_eq!(intersect_ids_at_least(&[], &b, 1), None);
        assert_eq!(intersect_ids_at_least(&a, &a, a.len()), Some(a.len()));
    }

    #[test]
    fn levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("café", "cafe"), 1, "unicode is per-char");
    }

    #[test]
    fn levenshtein_scratch_reuse_is_identical() {
        // One scratch across pairs of very different lengths: stale buffer
        // contents must never leak into a later distance.
        let mut scratch = EditScratch::default();
        for (a, b) in [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abcdefghij", "x"),
            ("abc", ""),
            ("same", "same"),
            ("café", "cafe"),
        ] {
            assert_eq!(
                levenshtein_with(a, b, &mut scratch),
                levenshtein(a, b),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn levenshtein_similarity_cases() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn banded_levenshtein_agrees_with_full_dp() {
        let words = [
            "", "a", "ab", "kitten", "sitting", "abcdefgh", "xbcdefgi", "café", "cafe",
        ];
        let mut scratch = EditScratch::default();
        for a in words {
            for b in words {
                let d = levenshtein(a, b);
                for budget in 0..=(d + 2) {
                    let got = levenshtein_within_with(a, b, budget, &mut scratch);
                    if budget >= d {
                        assert_eq!(got, Some(d), "{a:?} vs {b:?} budget {budget}");
                    } else {
                        assert_eq!(got, None, "{a:?} vs {b:?} budget {budget}");
                    }
                }
            }
        }
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook values.
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.961111).abs() < 1e-5);
        assert!(jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaro_winkler_boost_only_above_threshold() {
        // Shared 2-char prefix but jaro exactly 0.5: two matches in windows,
        // zero transpositions -> (2/8 + 2/8 + 2/2) / 3 = 0.5 ≤ 0.7, so no
        // boost — jaro_winkler must equal jaro exactly.
        let (a, b) = ("abcxxxxx", "abyyyyyy");
        let j = jaro(a, b);
        assert_eq!(j, 0.5);
        assert_eq!(jaro_winkler(a, b).to_bits(), j.to_bits());
        // Just above the threshold the boost kicks in: DIXON/DICKSONX has
        // jaro ≈ 0.767 > 0.7 and a 2-char prefix.
        let j = jaro("DIXON", "DICKSONX");
        let jw = jaro_winkler("DIXON", "DICKSONX");
        assert!(j > 0.7);
        let expected = j + 2.0 * 0.1 * (1.0 - j);
        assert_eq!(jw.to_bits(), expected.to_bits());
        assert!((jw - 0.813333).abs() < 1e-5);
    }

    #[test]
    fn scratch_variants_are_bit_identical() {
        let mut scratch = MatchScratch::default();
        let pairs = [
            ("MARTHA", "MARHTA"),
            ("Sony Bravia TV", "TV sony BRAVIA"),
            ("", "abc"),
            ("", ""),
            ("café au lait", "CAFÉ AU LAIT"),
            ("abcxxxxx", "abyyyyyy"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                jaro_with(a, b, &mut scratch).to_bits(),
                jaro(a, b).to_bits()
            );
            assert_eq!(
                jaro_winkler_with(a, b, &mut scratch).to_bits(),
                jaro_winkler(a, b).to_bits()
            );
            assert_eq!(
                monge_elkan_with(a, b, &mut scratch).to_bits(),
                monge_elkan(a, b).to_bits()
            );
            assert_eq!(
                levenshtein_similarity_with(a, b, &mut scratch.edit).to_bits(),
                levenshtein_similarity(a, b).to_bits()
            );
        }
    }

    #[test]
    fn monge_elkan_handles_reordering() {
        let s = monge_elkan("Sony Bravia TV", "TV sony BRAVIA");
        assert!(s > 0.99, "reordered tokens should score ~1, got {s}");
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
        let partial = monge_elkan("Sony Bravia", "Sony Walkman");
        assert!((0.5..1.0).contains(&partial));
    }

    #[test]
    fn monge_elkan_lowercases_once_regression() {
        // The hoisted lowercase pass must reproduce the former
        // per-comparison `to_lowercase` scores bit for bit — including on
        // non-ASCII tokens that take the Unicode fallback path.
        fn reference(a: &str, b: &str) -> f64 {
            let ta: Vec<&str> = a.split_whitespace().collect();
            let tb: Vec<&str> = b.split_whitespace().collect();
            if ta.is_empty() && tb.is_empty() {
                return 1.0;
            }
            if ta.is_empty() || tb.is_empty() {
                return 0.0;
            }
            let directed = |outer: &[&str], inner: &[&str]| -> f64 {
                let sum: f64 = outer
                    .iter()
                    .map(|x| {
                        inner
                            .iter()
                            .map(|y| jaro_winkler(&x.to_lowercase(), &y.to_lowercase()))
                            .fold(0.0, f64::max)
                    })
                    .sum();
                sum / outer.len() as f64
            };
            match ta.len().cmp(&tb.len()) {
                std::cmp::Ordering::Less => directed(&ta, &tb),
                std::cmp::Ordering::Greater => directed(&tb, &ta),
                std::cmp::Ordering::Equal => directed(&ta, &tb).max(directed(&tb, &ta)),
            }
        }
        let pairs = [
            ("Sony Bravia TV", "TV sony BRAVIA"),
            ("Sony Bravia", "Sony Walkman"),
            ("CAFÉ crème Brûlée", "cafe creme brulee"),
            ("ΣΊΣΥΦΟΣ myth", "σίσυφος MYTH"),
            ("one", "one two three"),
            ("", "x"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                monge_elkan(a, b).to_bits(),
                reference(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }
}
