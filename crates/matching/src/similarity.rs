//! Similarity and distance measures on token sets and strings.
//!
//! All measures return values in `[0, 1]` with 1 = identical, so matchers
//! can swap them freely under a common threshold semantics.

use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Token-set measures.
// ---------------------------------------------------------------------------

/// Jaccard similarity `|A∩B| / |A∪B|`. Empty-vs-empty is 0 (no evidence).
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Dice coefficient `2|A∩B| / (|A| + |B|)`.
pub fn dice(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A∩B| / min(|A|, |B|)`.
pub fn overlap(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

/// Cosine similarity of the binary token vectors:
/// `|A∩B| / sqrt(|A|·|B|)`.
pub fn cosine_tokens(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

// ---------------------------------------------------------------------------
// String (edit-based) measures.
// ---------------------------------------------------------------------------

/// Reusable buffers for [`levenshtein_with`]: the decoded char runs and the
/// two DP rows. One `EditScratch` per worker slot keeps the batch matchers'
/// edit-distance inner loop allocation-free after warm-up.
#[derive(Debug, Clone, Default)]
pub struct EditScratch {
    a: Vec<char>,
    b: Vec<char>,
    prev: Vec<usize>,
    curr: Vec<usize>,
}

/// Levenshtein edit distance (two-row dynamic program, O(|a|·|b|) time,
/// O(min) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(a, b, &mut EditScratch::default())
}

/// [`levenshtein`] over caller-provided buffers — identical result, no
/// allocation once the scratch has grown to the working size.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut EditScratch) -> usize {
    let EditScratch {
        a: ca,
        b: cb,
        prev,
        curr,
    } = scratch;
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
    let (short, long) = if ca.len() <= cb.len() {
        (&*ca, &*cb)
    } else {
        (&*cb, &*ca)
    };
    if short.is_empty() {
        return long.len();
    }
    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity: `1 − distance / max(|a|, |b|)`; 1 for two empty
/// strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    levenshtein_similarity_with(a, b, &mut EditScratch::default())
}

/// [`levenshtein_similarity`] over caller-provided buffers.
pub fn levenshtein_similarity_with(a: &str, b: &str, scratch: &mut EditScratch) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_with(a, b, scratch) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_taken)
        .filter(|(_, &taken)| taken)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity (prefix scale 0.1, max prefix 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Monge–Elkan similarity: for each token of the shorter side, the best
/// Jaro–Winkler match on the other side, averaged; on equal token counts,
/// the better of the two directions (making the measure symmetric, a
/// property the matcher-level tests pin). Robust to token reordering
/// ("Sony Bravia TV" vs "TV Sony BRAVIA").
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let directed = |outer: &[&str], inner: &[&str]| -> f64 {
        let sum: f64 = outer
            .iter()
            .map(|x| {
                inner
                    .iter()
                    .map(|y| jaro_winkler(&x.to_lowercase(), &y.to_lowercase()))
                    .fold(0.0, f64::max)
            })
            .sum();
        sum / outer.len() as f64
    };
    match ta.len().cmp(&tb.len()) {
        std::cmp::Ordering::Less => directed(&ta, &tb),
        std::cmp::Ordering::Greater => directed(&tb, &ta),
        std::cmp::Ordering::Equal => directed(&ta, &tb).max(directed(&tb, &ta)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_cases() {
        assert_eq!(jaccard(&set(&["a", "b"]), &set(&["b", "c"])), 1.0 / 3.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["a"])), 1.0);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 0.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
    }

    #[test]
    fn dice_overlap_cosine_cases() {
        let (a, b) = (set(&["a", "b", "c"]), set(&["b", "c", "d"]));
        assert!((dice(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((overlap(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine_tokens(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        // Subset: overlap saturates at 1.
        let sub = set(&["a", "b"]);
        assert_eq!(overlap(&a, &sub), 1.0);
        assert!(dice(&a, &sub) < 1.0);
        assert_eq!(overlap(&a, &set(&[])), 0.0);
        assert_eq!(cosine_tokens(&set(&[]), &b), 0.0);
    }

    #[test]
    fn measures_bounded_and_symmetric() {
        let sets = [set(&["x"]), set(&["x", "y"]), set(&["z"]), set(&[])];
        for a in &sets {
            for b in &sets {
                for f in [jaccard, dice, overlap, cosine_tokens] {
                    let s = f(a, b);
                    assert!((0.0..=1.0).contains(&s));
                    assert_eq!(s, f(b, a));
                }
            }
        }
    }

    #[test]
    fn levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("café", "cafe"), 1, "unicode is per-char");
    }

    #[test]
    fn levenshtein_scratch_reuse_is_identical() {
        // One scratch across pairs of very different lengths: stale buffer
        // contents must never leak into a later distance.
        let mut scratch = EditScratch::default();
        for (a, b) in [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abcdefghij", "x"),
            ("abc", ""),
            ("same", "same"),
            ("café", "cafe"),
        ] {
            assert_eq!(
                levenshtein_with(a, b, &mut scratch),
                levenshtein(a, b),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn levenshtein_similarity_cases() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook values.
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.961111).abs() < 1e-5);
        assert!(jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn monge_elkan_handles_reordering() {
        let s = monge_elkan("Sony Bravia TV", "TV sony BRAVIA");
        assert!(s > 0.99, "reordered tokens should score ~1, got {s}");
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
        let partial = monge_elkan("Sony Bravia", "Sony Walkman");
        assert!((0.5..1.0).contains(&partial));
    }
}
