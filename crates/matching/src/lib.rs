//! # sparker-matching
//!
//! SparkER's entity matcher: decide for each candidate pair produced by the
//! blocker whether it is a true match, producing the weighted *similarity
//! graph* the entity clusterer consumes.
//!
//! The paper plugs in external matchers (Magellan in the demo) and notes
//! "the user can select from a wide range of similarity (or distance)
//! scores, e.g.: Jaccard similarity, Edit Distance, CSA". This crate
//! provides:
//!
//! * [`similarity`] — token-set measures (Jaccard, Dice, overlap, cosine),
//!   string measures (Levenshtein, Jaro, Jaro–Winkler, Monge–Elkan) and a
//!   TF-IDF weighted cosine ([`TfIdfIndex`]) standing in for corpus-level
//!   measures like CSA.
//! * [`ThresholdMatcher`] — the unsupervised mode: one measure + one
//!   threshold.
//! * [`WeightedRuleMatcher`] — user-authored per-attribute rules
//!   (supervised mode, knowledge injection).
//! * [`PerceptronMatcher`] — a trainable linear matcher over similarity
//!   features, standing in for Magellan's learned matchers (which need
//!   labelled pairs, exactly as the paper's supervised mode describes).
//! * [`SimilarityGraph`] — the matcher output: weighted matching pairs.
//! * [`CandidateGraph`] + [`score_candidates_pool`] — the pool-parallel
//!   batch scorer: candidate pairs in CSR form streamed per profile,
//!   degree-cost morsel scheduling, per-worker scratch, sorted shard
//!   output byte-identical to the sequential matchers.

pub mod similarity;

mod candidates;
mod graph;
mod matcher;
mod perceptron;
mod tfidf;

pub use candidates::{score_candidates_pool, CandidateGraph};
pub use graph::SimilarityGraph;
pub use matcher::{
    Matcher, PreparedProfile, SimilarityMeasure, TfIdfMatcher, ThresholdMatcher, WeightedRule,
    WeightedRuleMatcher,
};
pub use perceptron::{pair_features, PerceptronMatcher, TrainConfig, FEATURE_NAMES};
pub use tfidf::TfIdfIndex;
