//! # sparker-matching
//!
//! SparkER's entity matcher: decide for each candidate pair produced by the
//! blocker whether it is a true match, producing the weighted *similarity
//! graph* the entity clusterer consumes.
//!
//! The paper plugs in external matchers (Magellan in the demo) and notes
//! "the user can select from a wide range of similarity (or distance)
//! scores, e.g.: Jaccard similarity, Edit Distance, CSA". This crate
//! provides:
//!
//! * [`similarity`] — token-set measures (Jaccard, Dice, overlap, cosine),
//!   string measures (Levenshtein, Jaro, Jaro–Winkler, Monge–Elkan) and a
//!   TF-IDF weighted cosine ([`TfIdfIndex`]) standing in for corpus-level
//!   measures like CSA.
//! * [`ThresholdMatcher`] — the unsupervised mode: one measure + one
//!   threshold.
//! * [`WeightedRuleMatcher`] — user-authored per-attribute rules
//!   (supervised mode, knowledge injection).
//! * [`PerceptronMatcher`] — a trainable linear matcher over similarity
//!   features, standing in for Magellan's learned matchers (which need
//!   labelled pairs, exactly as the paper's supervised mode describes).
//! * [`SimilarityGraph`] — the matcher output: weighted matching pairs.
//! * [`CandidateGraph`] + [`score_candidates_pool`] /
//!   [`filter_candidates_pool`] — the pool-parallel batch scorer:
//!   candidate pairs in CSR form streamed per profile, degree-cost morsel
//!   scheduling, per-worker scratch, sorted shard output byte-identical to
//!   the sequential matchers.
//!
//! The batch matchers score through a **filter–verify cascade** by
//! default: cheap [`ScoreBound`]s computed from cached token/char counts
//! reject most candidate pairs before any token comparison, and the
//! survivors are verified with early-abandoning kernels (budgeted
//! merge-joins, banded Levenshtein). The cascade retains exactly the naive
//! scorer's pairs with bit-identical scores; `SPARKER_NAIVE_MATCHER=1` (or
//! [`ScoringMode::Naive`]) switches back to score-everything.

pub mod similarity;

mod candidates;
mod graph;
mod matcher;
mod perceptron;
mod stream;
mod tfidf;

pub use candidates::{filter_candidates_pool, score_candidates_pool, CandidateGraph};
pub use graph::SimilarityGraph;
pub use matcher::{
    FilterStats, Matcher, PreparedProfile, ScoreBound, ScoringMode, SimilarityMeasure,
    TfIdfMatcher, ThresholdMatcher, WeightedRule, WeightedRuleMatcher,
};
pub use perceptron::{pair_features, PerceptronMatcher, TrainConfig, FEATURE_NAMES};
pub use stream::FusedMatchOutcome;
pub use tfidf::TfIdfIndex;
