//! Property-based tests of the similarity measures: bounds, symmetry,
//! identity, and known orderings.

use proptest::prelude::*;
use sparker_matching::similarity::*;
use std::collections::BTreeSet;

fn token_set() -> impl Strategy<Value = BTreeSet<String>> {
    prop::collection::btree_set("[a-z]{1,6}", 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_measures_bounded_symmetric(a in token_set(), b in token_set()) {
        for f in [jaccard, dice, overlap, cosine_tokens] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
            prop_assert_eq!(s, f(&b, &a));
        }
    }

    #[test]
    fn set_measures_identity(a in token_set()) {
        prop_assume!(!a.is_empty());
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        prop_assert_eq!(dice(&a, &a), 1.0);
        prop_assert_eq!(overlap(&a, &a), 1.0);
        prop_assert!((cosine_tokens(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_le_dice_le_overlap(a in token_set(), b in token_set()) {
        // Known pointwise ordering of the set measures.
        let j = jaccard(&a, &b);
        let d = dice(&a, &b);
        let o = overlap(&a, &b);
        prop_assert!(j <= d + 1e-12, "jaccard {j} > dice {d}");
        prop_assert!(d <= o + 1e-12, "dice {d} > overlap {o}");
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(levenshtein(&a, &a), 0, "identity");
        // Triangle inequality.
        let ac = levenshtein(&a, &c);
        let cb = levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle: d({a},{b})={ab} > {ac}+{cb}");
        // Bounded by the longer string.
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
        // At least the length difference.
        prop_assert!(ab >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn string_similarities_bounded_and_reflexive(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        for f in [levenshtein_similarity, jaro, jaro_winkler, monge_elkan] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{s}");
        }
        prop_assert!((levenshtein_similarity(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn single_edit_decreases_levenshtein_similarity_slightly(s in "[a-z]{2,15}") {
        let mut edited: Vec<char> = s.chars().collect();
        edited[0] = if edited[0] == 'z' { 'a' } else { 'z' };
        let edited: String = edited.into_iter().collect();
        prop_assert_eq!(levenshtein(&s, &edited), 1);
        let sim = levenshtein_similarity(&s, &edited);
        prop_assert!(sim >= 1.0 - 1.0 / s.chars().count() as f64 - 1e-12);
    }
}
