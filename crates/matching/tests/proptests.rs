//! Property-based tests of the similarity measures: bounds, symmetry,
//! identity, and known orderings — at the raw-function level and at the
//! [`SimilarityMeasure`] level the matchers use — plus the filter–verify
//! cascade's exactness contract against the naive scorer.

use proptest::prelude::*;
use sparker_matching::similarity::*;
use sparker_matching::{PreparedProfile, SimilarityMeasure};
use sparker_profiles::{DictBuilder, Profile, SourceId};
use std::collections::BTreeSet;

fn profile(values: &[String]) -> Profile {
    let mut b = Profile::builder(SourceId(0), "p");
    for (i, v) in values.iter().enumerate() {
        b = b.attr(format!("a{i}"), v.clone());
    }
    b.build()
}

/// Two prepared profiles built from generated attribute values against one
/// shared interner (possibly empty — empty values produce an empty token
/// set and empty concatenation, the degenerate shape real datasets
/// contain).
fn prepared_pair(a: &[String], b: &[String]) -> (PreparedProfile, PreparedProfile) {
    let mut dict = DictBuilder::new();
    let mut scratch = String::new();
    (
        PreparedProfile::from_profile(&profile(a), &mut dict, &mut scratch),
        PreparedProfile::from_profile(&profile(b), &mut dict, &mut scratch),
    )
}

fn values_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z ]{0,12}", 1..4)
}

fn token_set() -> impl Strategy<Value = BTreeSet<String>> {
    prop::collection::btree_set("[a-z]{1,6}", 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_measures_bounded_symmetric(a in token_set(), b in token_set()) {
        for f in [jaccard, dice, overlap, cosine_tokens] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
            prop_assert_eq!(s, f(&b, &a));
        }
    }

    #[test]
    fn set_measures_empty_semantics(a in token_set()) {
        // Documented empty-input conventions: every set measure scores 0
        // against an empty set — including empty-vs-empty — while the
        // string measures (covered below) score empty-vs-empty as 1.
        let empty = BTreeSet::new();
        for f in [jaccard, dice, overlap, cosine_tokens] {
            prop_assert_eq!(f(&a, &empty), 0.0);
            prop_assert_eq!(f(&empty, &a), 0.0);
            prop_assert_eq!(f(&empty, &empty), 0.0);
        }
    }

    #[test]
    fn set_measures_identity(a in token_set()) {
        prop_assume!(!a.is_empty());
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        prop_assert_eq!(dice(&a, &a), 1.0);
        prop_assert_eq!(overlap(&a, &a), 1.0);
        prop_assert!((cosine_tokens(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_le_dice_le_overlap(a in token_set(), b in token_set()) {
        // Known pointwise ordering of the set measures.
        let j = jaccard(&a, &b);
        let d = dice(&a, &b);
        let o = overlap(&a, &b);
        prop_assert!(j <= d + 1e-12, "jaccard {j} > dice {d}");
        prop_assert!(d <= o + 1e-12, "dice {d} > overlap {o}");
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(levenshtein(&a, &a), 0, "identity");
        // Triangle inequality.
        let ac = levenshtein(&a, &c);
        let cb = levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle: d({a},{b})={ab} > {ac}+{cb}");
        // Bounded by the longer string.
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
        // At least the length difference.
        prop_assert!(ab >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn banded_levenshtein_matches_full(a in "[a-z]{0,12}", b in "[a-z]{0,12}", budget in 0usize..14) {
        // The early-abandon band answers exactly: Some(d) iff d ≤ budget.
        let d = levenshtein(&a, &b);
        let got = levenshtein_within(&a, &b, budget);
        if budget >= d {
            prop_assert_eq!(got, Some(d));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn intersect_at_least_is_exact(a in prop::collection::btree_set(0u32..40, 0..20),
                                   b in prop::collection::btree_set(0u32..40, 0..20),
                                   need in 0usize..12) {
        let va: Vec<u32> = a.iter().copied().collect();
        let vb: Vec<u32> = b.iter().copied().collect();
        let true_inter = a.intersection(&b).count();
        let got = intersect_ids_at_least(&va, &vb, need);
        if true_inter >= need {
            prop_assert_eq!(got, Some(true_inter));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn string_similarities_bounded_and_reflexive(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        for f in [levenshtein_similarity, jaro, jaro_winkler, monge_elkan] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{s}");
        }
        prop_assert!((levenshtein_similarity(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn jaro_winkler_boost_gated_on_07(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        // At or below the 0.7 boost threshold, Winkler is exactly Jaro.
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        if j <= 0.7 {
            prop_assert_eq!(jw.to_bits(), j.to_bits());
        } else {
            prop_assert!(jw >= j);
        }
    }

    #[test]
    fn single_edit_decreases_levenshtein_similarity_slightly(s in "[a-z]{2,15}") {
        let mut edited: Vec<char> = s.chars().collect();
        edited[0] = if edited[0] == 'z' { 'a' } else { 'z' };
        let edited: String = edited.into_iter().collect();
        prop_assert_eq!(levenshtein(&s, &edited), 1);
        let sim = levenshtein_similarity(&s, &edited);
        prop_assert!(sim >= 1.0 - 1.0 / s.chars().count() as f64 - 1e-12);
    }

    #[test]
    fn measures_bounded_and_symmetric(a in values_strategy(), b in values_strategy()) {
        // Every selectable measure is symmetric and lands in [0, 1], even on
        // degenerate (empty-valued) profiles.
        let (pa, pb) = prepared_pair(&a, &b);
        for measure in SimilarityMeasure::ALL {
            let ab = measure.score_prepared(&pa, &pb);
            let ba = measure.score_prepared(&pb, &pa);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "{}: {ab}", measure.name());
            prop_assert!((ab - ba).abs() < 1e-12, "{}: {ab} != {ba}", measure.name());
        }
    }

    #[test]
    fn measures_identity_on_nonempty_profiles(a in prop::collection::vec("[a-z]{1,8}", 1..4)) {
        let (p, q) = prepared_pair(&a, &a);
        for measure in SimilarityMeasure::ALL {
            let s = measure.score_prepared(&p, &q);
            prop_assert!((s - 1.0).abs() < 1e-12, "{}: self-score {s}", measure.name());
        }
    }

    #[test]
    fn scratch_scoring_is_bit_identical(a in values_strategy(), b in values_strategy()) {
        // The per-worker-scratch path the pool matcher uses must produce the
        // same bits as the allocating path, for every measure.
        let (pa, pb) = prepared_pair(&a, &b);
        let mut scratch = MatchScratch::default();
        for measure in SimilarityMeasure::ALL {
            let plain = measure.score_prepared(&pa, &pb);
            let with = measure.score_prepared_with(&pa, &pb, &mut scratch);
            prop_assert_eq!(plain.to_bits(), with.to_bits(), "{}", measure.name());
        }
    }

    #[test]
    fn cascade_verify_equals_naive_threshold(a in values_strategy(),
                                             b in values_strategy(),
                                             threshold in 0.0f64..=1.0) {
        // The cascade's whole contract: verify_prepared returns Some(score)
        // iff the naive score passes the threshold, with identical bits —
        // on randomized profiles, for every measure, at any threshold.
        let (pa, pb) = prepared_pair(&a, &b);
        let mut scratch = MatchScratch::default();
        let mut stats = sparker_matching::FilterStats::default();
        for measure in SimilarityMeasure::ALL {
            let naive = measure.score_prepared(&pa, &pb);
            let expected = (naive >= threshold).then_some(naive.to_bits());
            let got = measure
                .verify_prepared(&pa, &pb, threshold, &mut scratch, &mut stats)
                .map(f64::to_bits);
            prop_assert_eq!(got, expected, "{} @ {}", measure.name(), threshold);
        }
        prop_assert_eq!(
            stats.pairs,
            stats.bound_rejected + stats.abandoned + stats.verified
        );
    }

    #[test]
    fn edit_based_measures_tolerate_empty_strings(s in "[a-z ]{0,15}") {
        // Monge–Elkan and Jaro–Winkler must not panic on empty inputs and
        // must stay bounded; both directions and the empty–empty case.
        for f in [monge_elkan, jaro_winkler] {
            for (x, y) in [(s.as_str(), ""), ("", s.as_str()), ("", "")] {
                let v = f(x, y);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{v}");
            }
        }
        prop_assert_eq!(monge_elkan("", ""), 1.0);
        prop_assert_eq!(jaro_winkler("", ""), 1.0);
    }
}
