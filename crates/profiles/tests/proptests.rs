//! Property-based tests of the data-model crate: CSV/JSON round trips,
//! tokenization invariants, pair normalization.

use proptest::prelude::*;
use sparker_profiles::{
    ngrams, parse_csv, parse_json, tokenize, write_csv, JsonValue, Pair, ProfileId,
};

fn json_value_strategy() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1e9f64..1e9).prop_map(|n| JsonValue::Number((n * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 \\\\\"\n\t]{0,20}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 32, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(JsonValue::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csv_roundtrip(rows in prop::collection::vec(
        prop::collection::vec("[ -~]{0,15}", 1..5),
        0..10,
    )) {
        // Normalize: all rows same width (CSV has no ragged-row contract here),
        // and the last field of the last row non-empty is not required — the
        // parser treats a trailing newline canonically.
        let width = rows.iter().map(Vec::len).max().unwrap_or(1);
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            // A row of all-empty fields serializes to an empty line, which
            // the parser cannot distinguish from no row; keep a marker.
            .map(|mut r| {
                if r.iter().all(String::is_empty) {
                    r[0] = "x".to_string();
                }
                r
            })
            .collect();
        let text = write_csv(&rows, ',');
        let parsed = parse_csv(&text, ',').unwrap();
        prop_assert_eq!(parsed, rows);
    }

    #[test]
    fn json_roundtrip(value in json_value_strategy()) {
        let text = value.to_string();
        let parsed = parse_json(&text).unwrap();
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn tokens_are_lowercase_alphanumeric_nonempty(s in "\\PC{0,60}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_its_output(s in "[a-zA-Z0-9 ,.;-]{0,60}") {
        let once: Vec<String> = tokenize(&s).collect();
        let again: Vec<String> = tokenize(&once.join(" ")).collect();
        prop_assert_eq!(once, again);
    }

    #[test]
    fn ngrams_cover_text(s in "[a-z]{1,30}", n in 1usize..6) {
        let grams = ngrams(&s, n);
        prop_assert!(!grams.is_empty());
        if s.len() > n {
            prop_assert_eq!(grams.len(), s.len() - n + 1);
            for g in &grams {
                prop_assert_eq!(g.chars().count(), n);
                prop_assert!(s.contains(g.as_str()));
            }
        }
    }

    #[test]
    fn pair_normalization(a in 0u32..1000, b in 0u32..1000) {
        prop_assume!(a != b);
        let p = Pair::new(ProfileId(a), ProfileId(b));
        let q = Pair::new(ProfileId(b), ProfileId(a));
        prop_assert_eq!(p, q);
        prop_assert!(p.first < p.second);
        prop_assert!(p.contains(ProfileId(a)) && p.contains(ProfileId(b)));
        prop_assert_eq!(p.other(ProfileId(a)), Some(ProfileId(b)));
    }
}
