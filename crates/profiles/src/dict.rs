//! Token dictionary: interning normalized tokens to dense integer ids.
//!
//! Every stage of the blocker keys on tokens — Token Blocking buckets by
//! them, Meta-Blocking's graph is built over the blocks they induce, TF-IDF
//! weights them. Re-hashing and re-allocating the same `String`s at each
//! stage is pure overhead, so the pipeline interns the distinct tokens of a
//! collection **once** into a [`TokenDict`] and pushes the dense
//! [`TokenId`]s through every hot path. Ids are assigned in lexicographic
//! token order, so sorting by id equals sorting by key string — block
//! collections built on ids come out in exactly the order the string-keyed
//! implementation produces.
//!
//! The original token strings stay recoverable for display and debugging
//! via [`TokenDict::resolve`].

use crate::collection::ProfileCollection;
use crate::profile::Profile;
use crate::tokenize::{each_token, Token};
use sparker_dataflow::Context;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, the interner's hasher. Tokens are short (a handful of bytes), so
/// the per-byte multiply beats SipHash's fixed per-key setup cost by a wide
/// margin, and the interner needs no DoS resistance — keys come from the
/// local dataset, not an adversary.
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvBuild = BuildHasherDefault<Fnv1a>;

/// Dense id of a distinct normalized token within a [`TokenDict`].
///
/// Ids run `0..dict.len()` in lexicographic token order, so they double as
/// vector indices and as sort keys equivalent to the token strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The distinct normalized tokens of a collection, interned to dense
/// [`TokenId`]s in lexicographic order.
///
/// Built in one pass over the collection ([`TokenDict::build`], or
/// [`TokenDict::build_parallel`] on the dataflow pool); lookups are
/// allocation-free binary searches, resolution is a vector index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenDict {
    /// Sorted distinct tokens; the index of a token is its id.
    tokens: Vec<Token>,
}

impl TokenDict {
    /// Intern every distinct token of the collection, sequentially.
    pub fn build(collection: &ProfileCollection) -> Self {
        let mut set: HashSet<Token, FnvBuild> = HashSet::default();
        let mut scratch = String::new();
        for p in collection.profiles() {
            for a in &p.attributes {
                each_token(&a.value, &mut scratch, |t| {
                    if !set.contains(t) {
                        set.insert(t.to_owned());
                    }
                });
            }
        }
        let mut tokens: Vec<Token> = set.into_iter().collect();
        tokens.sort_unstable();
        TokenDict { tokens }
    }

    /// Intern every distinct token in one parallel pass on the dataflow
    /// pool: each partition scans a contiguous profile range into a local
    /// distinct set, the driver merges the (small) per-partition sets.
    /// Identical to [`TokenDict::build`] for any worker count.
    pub fn build_parallel(ctx: &Context, collection: &ProfileCollection) -> Self {
        let n = collection.len();
        if n == 0 {
            return TokenDict::default();
        }
        // Contiguous index ranges, one record per eventual task.
        let parts = ctx.default_partitions().min(n);
        let ranges: Vec<(usize, usize)> = (0..parts)
            .map(|i| (i * n / parts, (i + 1) * n / parts))
            .collect();
        let mut tokens: Vec<Token> = ctx
            .parallelize(ranges, parts)
            .map_partitions(|_, ranges| {
                let mut set: HashSet<Token, FnvBuild> = HashSet::default();
                let mut scratch = String::new();
                for &(lo, hi) in ranges {
                    for p in &collection.profiles()[lo..hi] {
                        for a in &p.attributes {
                            each_token(&a.value, &mut scratch, |t| {
                                if !set.contains(t) {
                                    set.insert(t.to_owned());
                                }
                            });
                        }
                    }
                }
                set.into_iter().collect()
            })
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        TokenDict { tokens }
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when the dictionary holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The id of a normalized token, if present. Allocation-free.
    pub fn lookup(&self, token: &str) -> Option<TokenId> {
        self.tokens
            .binary_search_by(|t| t.as_str().cmp(token))
            .ok()
            .map(|i| TokenId(i as u32))
    }

    /// The token string behind an id — how block keys are turned back into
    /// strings for display, debugging and the materialized
    /// `BlockCollection`. Panics on ids from another dictionary.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.tokens[id.index()]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The schema-agnostic token-id bag of a profile: sorted, deduplicated
    /// ids of every token of every attribute value. The interned equivalent
    /// of [`Profile::token_set`]; tokens absent from the dictionary are
    /// skipped.
    pub fn token_ids(&self, profile: &Profile) -> Vec<TokenId> {
        let mut out = Vec::new();
        let mut scratch = String::new();
        self.token_ids_into(profile, &mut scratch, &mut out);
        out
    }

    /// [`TokenDict::token_ids`] into reusable buffers (`out` is cleared
    /// first) — the allocation-free loop shape interned blocking uses.
    pub fn token_ids_into(&self, profile: &Profile, scratch: &mut String, out: &mut Vec<TokenId>) {
        out.clear();
        for a in &profile.attributes {
            each_token(&a.value, scratch, |t| {
                if let Some(id) = self.lookup(t) {
                    out.push(id);
                }
            });
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Incremental interner for single-pass pipelines.
///
/// [`TokenDict::build`] followed by per-token [`TokenDict::lookup`] scans
/// the collection twice and pays a binary search per token occurrence.
/// `DictBuilder` instead assigns **provisional insertion-order ids** while
/// the caller streams tokens (one hash probe per occurrence), and
/// [`DictBuilder::finish`] then sorts the vocabulary once and returns the
/// dictionary together with the permutation from provisional ids to final
/// lexicographic [`TokenId`]s. Callers remap the ids they recorded through
/// that permutation — a flat array lookup per occurrence — so the whole
/// collection is tokenized exactly once.
#[derive(Debug, Default)]
pub struct DictBuilder {
    ids: HashMap<Token, u32, FnvBuild>,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern one normalized token, returning its provisional
    /// insertion-order id. Stable for repeated tokens.
    #[inline]
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            id
        } else {
            let id = self.ids.len() as u32;
            self.ids.insert(token.to_owned(), id);
            id
        }
    }

    /// Intern every normalized token of `text`, appending the provisional
    /// ids to `out` in occurrence order (duplicates included). `scratch` is
    /// the tokenizer's normalization buffer, reused across calls.
    pub fn intern_tokens(&mut self, text: &str, scratch: &mut String, out: &mut Vec<u32>) {
        each_token(text, scratch, |t| out.push(self.intern(t)));
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sort the vocabulary and seal it: returns the dictionary plus `perm`,
    /// where `perm[provisional_id]` is the final lexicographic id
    /// ([`TokenId`] value) of the token [`DictBuilder::intern`] handed out
    /// `provisional_id` for.
    pub fn finish(self) -> (TokenDict, Vec<u32>) {
        let mut entries: Vec<(Token, u32)> = self.ids.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut perm = vec![0u32; entries.len()];
        let mut tokens = Vec::with_capacity(entries.len());
        for (new_id, (token, old_id)) in entries.into_iter().enumerate() {
            perm[old_id as usize] = new_id as u32;
            tokens.push(token);
        }
        (TokenDict { tokens }, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SourceId;

    fn collection() -> ProfileCollection {
        ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a")
                .attr("name", "Sony BRAVIA tv")
                .attr("desc", "bravia Modène tv")
                .build(),
            Profile::builder(SourceId(0), "b")
                .attr("name", "samsung galaxy")
                .build(),
        ])
    }

    #[test]
    fn build_interns_distinct_sorted() {
        let dict = TokenDict::build(&collection());
        assert_eq!(
            dict.tokens(),
            &["bravia", "galaxy", "modène", "samsung", "sony", "tv"]
        );
        assert_eq!(dict.len(), 6);
        assert!(!dict.is_empty());
    }

    #[test]
    fn lookup_and_resolve_roundtrip() {
        let dict = TokenDict::build(&collection());
        for (i, t) in dict.tokens().iter().enumerate() {
            let id = dict.lookup(t).unwrap();
            assert_eq!(id, TokenId(i as u32));
            assert_eq!(dict.resolve(id), t);
        }
        assert_eq!(dict.lookup("absent"), None);
    }

    #[test]
    fn ids_sort_like_tokens() {
        let dict = TokenDict::build(&collection());
        let mut by_id: Vec<&str> = dict.tokens().iter().map(|t| t.as_str()).collect();
        by_id.sort_by_key(|t| dict.lookup(t).unwrap());
        let mut by_str = by_id.clone();
        by_str.sort_unstable();
        assert_eq!(by_id, by_str);
    }

    #[test]
    fn token_ids_match_token_set() {
        let coll = collection();
        let dict = TokenDict::build(&coll);
        for p in coll.profiles() {
            let ids = dict.token_ids(p);
            let strings: Vec<&str> = ids.iter().map(|&i| dict.resolve(i)).collect();
            let expected: Vec<Token> = p.token_set().into_iter().collect();
            assert_eq!(
                strings,
                expected.iter().map(String::as_str).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let coll = collection();
        let seq = TokenDict::build(&coll);
        for workers in [1, 2, 4] {
            let ctx = Context::new(workers);
            assert_eq!(TokenDict::build_parallel(&ctx, &coll), seq);
        }
    }

    #[test]
    fn empty_collection_empty_dict() {
        let empty = ProfileCollection::dirty(vec![]);
        assert!(TokenDict::build(&empty).is_empty());
        let ctx = Context::new(2);
        assert!(TokenDict::build_parallel(&ctx, &empty).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TokenId(4).to_string(), "t4");
        assert_eq!(TokenId(4).index(), 4);
    }

    #[test]
    fn builder_matches_build_and_permutes() {
        let coll = collection();
        let expected = TokenDict::build(&coll);

        let mut builder = DictBuilder::new();
        assert!(builder.is_empty());
        let mut scratch = String::new();
        let mut raw: Vec<(String, u32)> = Vec::new();
        for p in coll.profiles() {
            for a in &p.attributes {
                each_token(&a.value, &mut scratch, |t| {
                    raw.push((t.to_owned(), builder.intern(t)));
                });
            }
        }
        // Repeated tokens get the same provisional id.
        assert_eq!(builder.len(), expected.len());
        let (dict, perm) = builder.finish();
        assert_eq!(dict, expected);
        // Remapping a provisional id yields the token's lexicographic id.
        for (token, old_id) in raw {
            assert_eq!(TokenId(perm[old_id as usize]), dict.lookup(&token).unwrap());
        }
    }

    #[test]
    fn intern_tokens_matches_per_token_intern() {
        let mut a = DictBuilder::new();
        let mut b = DictBuilder::new();
        let mut scratch = String::new();
        let texts = ["Sony Bravia TV", "sony BRAVIA 40-inch", ""];
        let mut via_helper = Vec::new();
        let mut via_loop = Vec::new();
        for text in texts {
            a.intern_tokens(text, &mut scratch, &mut via_helper);
            each_token(text, &mut scratch, |t| via_loop.push(b.intern(t)));
        }
        assert_eq!(via_helper, via_loop);
        assert_eq!(a.len(), b.len());
        // Occurrence order preserved, duplicates kept: "sony" and "bravia"
        // repeat across the two texts with their original provisional ids.
        assert_eq!(via_helper[0], via_helper[3]);
        assert_eq!(via_helper[1], via_helper[4]);
    }
}
