//! Tokenization: the schema-agnostic "bag of words" view of values.
//!
//! The paper's schema-agnostic Token Blocking treats *every token appearing
//! anywhere in a profile* as a blocking key. Tokens here are produced the
//! way SparkER produces them: case-folded, split on any non-alphanumeric
//! character, empty fragments dropped.

/// A normalized token. Plain `String` alias kept for readability of
/// signatures across the workspace.
pub type Token = String;

/// Split `text` into normalized tokens: lower-cased maximal runs of
/// alphanumeric characters.
///
/// ```
/// use sparker_profiles::tokenize;
/// let t: Vec<_> = tokenize("SparkER: parallel Blast (2017)").collect();
/// assert_eq!(t, vec!["sparker", "parallel", "blast", "2017"]);
/// ```
pub fn tokenize(text: &str) -> impl Iterator<Item = Token> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
}

/// Like [`tokenize`] but drops tokens shorter than `min_len` characters.
///
/// Blocking on one-character tokens (initials, units) creates huge,
/// uninformative blocks; loaders and generators use `min_len = 1` (keep
/// everything, the paper's block purging handles stop words), while some
/// matchers prefer `min_len = 2`.
pub fn tokenize_filtered(text: &str, min_len: usize) -> impl Iterator<Item = Token> + '_ {
    tokenize(text).filter(move |t| t.chars().count() >= min_len)
}

/// Character n-grams of the normalized text (whitespace collapsed), used by
/// the LSH attribute-partitioning step and by string similarity measures.
///
/// Returns the whole string as a single gram when it is shorter than `n`.
///
/// ```
/// use sparker_profiles::ngrams;
/// assert_eq!(ngrams("abcd", 3), vec!["abc", "bcd"]);
/// assert_eq!(ngrams("ab", 3), vec!["ab"]);
/// ```
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "ngram size must be positive");
    let normalized: Vec<char> = text
        .to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .chars()
        .collect();
    if normalized.is_empty() {
        return Vec::new();
    }
    if normalized.len() <= n {
        return vec![normalized.into_iter().collect()];
    }
    normalized
        .windows(n)
        .map(|w| w.iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_folds_case() {
        let t: Vec<Token> = tokenize("L. Gagliardelli, Simonini et-al").collect();
        assert_eq!(t, vec!["l", "gagliardelli", "simonini", "et", "al"]);
    }

    #[test]
    fn empty_and_symbol_only_strings_yield_nothing() {
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("!!! --- ???").count(), 0);
    }

    #[test]
    fn digits_are_tokens() {
        let t: Vec<Token> = tokenize("year = {2017}").collect();
        assert_eq!(t, vec!["year", "2017"]);
    }

    #[test]
    fn unicode_words_survive() {
        let t: Vec<Token> = tokenize("Modène café").collect();
        assert_eq!(t, vec!["modène", "café"]);
    }

    #[test]
    fn filtered_drops_short_tokens() {
        let t: Vec<Token> = tokenize_filtered("a bc def", 2).collect();
        assert_eq!(t, vec!["bc", "def"]);
    }

    #[test]
    fn ngrams_basic() {
        assert_eq!(ngrams("hello", 3), vec!["hel", "ell", "llo"]);
    }

    #[test]
    fn ngrams_normalizes_whitespace_and_case() {
        assert_eq!(ngrams("A  B", 3), vec!["a b"]);
    }

    #[test]
    fn ngrams_short_input_is_one_gram() {
        assert_eq!(ngrams("hi", 4), vec!["hi"]);
        assert!(ngrams("", 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "ngram size")]
    fn ngrams_zero_panics() {
        ngrams("abc", 0);
    }
}
