//! Tokenization: the schema-agnostic "bag of words" view of values.
//!
//! The paper's schema-agnostic Token Blocking treats *every token appearing
//! anywhere in a profile* as a blocking key. Tokens here are produced the
//! way SparkER produces them: case-folded, split on any non-alphanumeric
//! character, empty fragments dropped.

/// A normalized token. Plain `String` alias kept for readability of
/// signatures across the workspace.
pub type Token = String;

/// `true` when the fragment is already a normalized token: pure ASCII with
/// no uppercase letters. Such fragments (the overwhelming majority in real
/// data) can be used verbatim, skipping Unicode case mapping.
#[inline]
fn is_lower_ascii(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase())
}

/// Lowercase one raw fragment with the cheapest applicable path: a plain
/// copy for lowercase ASCII, a byte map for other ASCII, full Unicode case
/// mapping only when needed.
fn normalize_token(s: &str) -> Token {
    if is_lower_ascii(s) {
        s.to_string()
    } else if s.is_ascii() {
        s.to_ascii_lowercase()
    } else {
        s.to_lowercase()
    }
}

/// Split `text` into normalized tokens: lower-cased maximal runs of
/// alphanumeric characters.
///
/// ```
/// use sparker_profiles::tokenize;
/// let t: Vec<_> = tokenize("SparkER: parallel Blast (2017)").collect();
/// assert_eq!(t, vec!["sparker", "parallel", "blast", "2017"]);
/// ```
pub fn tokenize(text: &str) -> impl Iterator<Item = Token> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(normalize_token)
}

/// Zero-allocation token visitor: calls `f` with each normalized token of
/// `text` as a borrowed `&str`.
///
/// Already-lowercase ASCII fragments are passed through as sub-slices of
/// `text` without copying; fragments that need case folding are normalized
/// into `scratch` (reused across calls, so a loop over many values settles
/// into zero allocations). This is the hot path behind
/// [`crate::TokenDict`] and interned blocking, where tokens are looked up
/// by `&str` and never need to be owned.
pub fn each_token(text: &str, scratch: &mut String, mut f: impl FnMut(&str)) {
    for frag in text.split(|c: char| !c.is_alphanumeric()) {
        if frag.is_empty() {
            continue;
        }
        if is_lower_ascii(frag) {
            f(frag);
        } else if frag.is_ascii() {
            scratch.clear();
            scratch.extend(frag.bytes().map(|b| b.to_ascii_lowercase() as char));
            f(scratch);
        } else {
            scratch.clear();
            scratch.push_str(&frag.to_lowercase());
            f(scratch);
        }
    }
}

/// Like [`tokenize`] but drops tokens shorter than `min_len` characters.
///
/// Blocking on one-character tokens (initials, units) creates huge,
/// uninformative blocks; loaders and generators use `min_len = 1` (keep
/// everything, the paper's block purging handles stop words), while some
/// matchers prefer `min_len = 2`.
pub fn tokenize_filtered(text: &str, min_len: usize) -> impl Iterator<Item = Token> + '_ {
    tokenize(text).filter(move |t| t.chars().count() >= min_len)
}

/// Character n-grams of the normalized text (whitespace collapsed), used by
/// the LSH attribute-partitioning step and by string similarity measures.
///
/// Returns the whole string as a single gram when it is shorter than `n`.
///
/// ```
/// use sparker_profiles::ngrams;
/// assert_eq!(ngrams("abcd", 3), vec!["abc", "bcd"]);
/// assert_eq!(ngrams("ab", 3), vec!["ab"]);
/// ```
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "ngram size must be positive");
    // Collapse whitespace runs while collecting chars — no intermediate
    // split/join strings.
    let lower = text.to_lowercase();
    let mut normalized: Vec<char> = Vec::with_capacity(lower.len());
    for c in lower.chars() {
        if c.is_whitespace() {
            if !normalized.is_empty() && *normalized.last().unwrap() != ' ' {
                normalized.push(' ');
            }
        } else {
            normalized.push(c);
        }
    }
    if normalized.last() == Some(&' ') {
        normalized.pop();
    }
    if normalized.is_empty() {
        return Vec::new();
    }
    if normalized.len() <= n {
        return vec![normalized.into_iter().collect()];
    }
    normalized.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_folds_case() {
        let t: Vec<Token> = tokenize("L. Gagliardelli, Simonini et-al").collect();
        assert_eq!(t, vec!["l", "gagliardelli", "simonini", "et", "al"]);
    }

    #[test]
    fn empty_and_symbol_only_strings_yield_nothing() {
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("!!! --- ???").count(), 0);
    }

    #[test]
    fn digits_are_tokens() {
        let t: Vec<Token> = tokenize("year = {2017}").collect();
        assert_eq!(t, vec!["year", "2017"]);
    }

    #[test]
    fn unicode_words_survive() {
        let t: Vec<Token> = tokenize("Modène café").collect();
        assert_eq!(t, vec!["modène", "café"]);
    }

    #[test]
    fn filtered_drops_short_tokens() {
        let t: Vec<Token> = tokenize_filtered("a bc def", 2).collect();
        assert_eq!(t, vec!["bc", "def"]);
    }

    /// Collect `each_token` output to compare against the iterator path.
    fn visit(text: &str) -> Vec<Token> {
        let mut scratch = String::new();
        let mut out = Vec::new();
        each_token(text, &mut scratch, |t| out.push(t.to_string()));
        out
    }

    #[test]
    fn each_token_matches_tokenize() {
        for text in [
            "Sony BRAVIA kdl-40 (2014)",
            "already lowercase ascii",
            "Modène CAFÉ mixed ÉTÉ",
            "",
            "!!! --- ???",
            "ǅungla mixed Titlecase",
        ] {
            assert_eq!(visit(text), tokenize(text).collect::<Vec<_>>(), "{text:?}");
        }
    }

    #[test]
    fn ascii_fast_path_is_verbatim() {
        // A lowercase-ASCII-only string must come through unchanged
        // (exercises the no-allocation borrow path).
        assert_eq!(visit("plain tokens 123"), vec!["plain", "tokens", "123"]);
        // Mixed-case ASCII takes the byte-map path.
        assert_eq!(visit("MiXeD"), vec!["mixed"]);
    }

    #[test]
    fn ngrams_basic() {
        assert_eq!(ngrams("hello", 3), vec!["hel", "ell", "llo"]);
    }

    #[test]
    fn ngrams_normalizes_whitespace_and_case() {
        assert_eq!(ngrams("A  B", 3), vec!["a b"]);
    }

    #[test]
    fn ngrams_short_input_is_one_gram() {
        assert_eq!(ngrams("hi", 4), vec!["hi"]);
        assert!(ngrams("", 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "ngram size")]
    fn ngrams_zero_panics() {
        ngrams("abc", 0);
    }
}
