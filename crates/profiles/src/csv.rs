//! Minimal RFC-4180-style CSV reader/writer.
//!
//! Hand-rolled (no external dependency) but complete for the ER loaders'
//! needs: quoted fields, embedded separators, escaped quotes (`""`),
//! embedded newlines inside quotes, CRLF tolerance, configurable separator.

use crate::error::{Error, Result};
use crate::profile::{Profile, SourceId};

/// Options for [`parse_csv`] / [`profiles_from_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first row is a header (default `true`).
    pub has_header: bool,
    /// Name of the column holding the record's original id; when absent the
    /// 0-based row number is used.
    pub id_column: Option<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            id_column: Some("id".to_string()),
        }
    }
}

/// Parse CSV text into rows of fields.
///
/// ```
/// use sparker_profiles::parse_csv;
/// let rows = parse_csv("a,b\n\"x,1\",\"he said \"\"hi\"\"\"\n", ',').unwrap();
/// assert_eq!(rows, vec![
///     vec!["a".to_string(), "b".to_string()],
///     vec!["x,1".to_string(), "he said \"hi\"".to_string()],
/// ]);
/// ```
pub fn parse_csv(text: &str, separator: char) -> Result<Vec<Vec<String>>> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            message: "quote inside unquoted field".to_string(),
                            line,
                        });
                    }
                    in_quotes = true;
                }
                '\r' => { /* swallow; LF handles row end */ }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                c if c == separator => row.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            message: "unterminated quoted field".to_string(),
            line,
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Serialize rows back to CSV (quoting only when needed).
pub fn write_csv(rows: &[Vec<String>], separator: char) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(separator);
            }
            let needs_quotes =
                f.contains(separator) || f.contains('"') || f.contains('\n') || f.contains('\r');
            if needs_quotes {
                out.push('"');
                out.push_str(&f.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(f);
            }
        }
        out.push('\n');
    }
    out
}

/// Load profiles from CSV text: each row becomes one profile, each non-id
/// column an attribute (header names, or `col0`, `col1`, … without a
/// header). Empty cells are skipped.
pub fn profiles_from_csv(
    text: &str,
    source: SourceId,
    options: &CsvOptions,
) -> Result<Vec<Profile>> {
    let rows = parse_csv(text, options.separator)?;
    let mut it = rows.into_iter();
    let header: Option<Vec<String>> = if options.has_header { it.next() } else { None };

    let id_index: Option<usize> = match (&header, &options.id_column) {
        (Some(h), Some(idc)) => h.iter().position(|c| c == idc),
        _ => None,
    };

    let mut profiles = Vec::new();
    for (rownum, row) in it.enumerate() {
        let original_id = id_index
            .and_then(|i| row.get(i).cloned())
            .unwrap_or_else(|| rownum.to_string());
        let mut b = Profile::builder(source, original_id);
        for (i, value) in row.iter().enumerate() {
            if Some(i) == id_index {
                continue;
            }
            let name = header
                .as_ref()
                .and_then(|h| h.get(i).cloned())
                .unwrap_or_else(|| format!("col{i}"));
            b = b.attr(name, value.clone());
        }
        profiles.push(b.build());
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_rows() {
        let rows = parse_csv("a,b,c\n1,2,3\n", ',').unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn handles_quotes_separators_and_newlines() {
        let rows = parse_csv("\"a,b\",\"line1\nline2\",\"say \"\"hi\"\"\"\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a,b", "line1\nline2", "say \"hi\""]);
    }

    #[test]
    fn crlf_tolerated() {
        let rows = parse_csv("a,b\r\n1,2\r\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let rows = parse_csv("a,b\n1,2", ',').unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse_csv("a,,c\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_csv("\"abc\n", ',').unwrap_err();
        assert!(matches!(err, Error::Csv { .. }));
    }

    #[test]
    fn quote_mid_field_is_error() {
        let err = parse_csv("ab\"c,d\n", ',').unwrap_err();
        assert!(err.to_string().contains("unquoted"));
    }

    #[test]
    fn custom_separator() {
        let rows = parse_csv("a;b\n1;2\n", ';').unwrap();
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn roundtrip_write_parse() {
        let rows = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
        ];
        let text = write_csv(&rows, ',');
        assert_eq!(parse_csv(&text, ',').unwrap(), rows);
    }

    #[test]
    fn profiles_with_header_and_id_column() {
        let text = "id,name,price\nabt-1,Sony TV,699\nabt-2,,\n";
        let ps = profiles_from_csv(text, SourceId(0), &CsvOptions::default()).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].original_id, "abt-1");
        assert_eq!(ps[0].value_of("name"), Some("Sony TV"));
        assert_eq!(ps[0].value_of("price"), Some("699"));
        assert!(
            ps[0].value_of("id").is_none(),
            "id column is not an attribute"
        );
        assert!(ps[1].is_blank(), "empty cells skipped");
    }

    #[test]
    fn profiles_without_header_use_row_numbers() {
        let opts = CsvOptions {
            has_header: false,
            id_column: None,
            ..CsvOptions::default()
        };
        let ps = profiles_from_csv("x,y\nz,w\n", SourceId(1), &opts).unwrap();
        assert_eq!(ps[0].original_id, "0");
        assert_eq!(ps[1].original_id, "1");
        assert_eq!(ps[0].value_of("col0"), Some("x"));
        assert_eq!(ps[1].value_of("col1"), Some("w"));
        assert_eq!(ps[0].source, SourceId(1));
    }

    #[test]
    fn id_column_missing_from_header_falls_back_to_row_number() {
        let opts = CsvOptions {
            id_column: Some("uid".to_string()),
            ..CsvOptions::default()
        };
        let ps = profiles_from_csv("name\nSony\n", SourceId(0), &opts).unwrap();
        assert_eq!(ps[0].original_id, "0");
        assert_eq!(ps[0].value_of("name"), Some("Sony"));
    }
}
