//! Profile collections: the input of an ER task.

use crate::profile::{Profile, ProfileId, SourceId};
use std::collections::HashMap;

/// Which kind of ER task a collection represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErKind {
    /// One source that may contain duplicates; all pairs are comparable.
    Dirty,
    /// Two duplicate-free sources; only cross-source pairs are comparable.
    CleanClean,
}

/// The profiles of one ER task, with dense ids and source bookkeeping.
///
/// For clean–clean tasks the profiles of source 0 come first (ids
/// `0..separator`), then source 1 (`separator..len`) — the same
/// "separator id" layout SparkER uses to tell the two sources apart
/// without storing a source per record.
#[derive(Debug, Clone)]
pub struct ProfileCollection {
    kind: ErKind,
    profiles: Vec<Profile>,
    /// First id of source 1 for clean–clean; equals `len` for dirty.
    separator: u32,
}

impl ProfileCollection {
    /// Build a dirty-ER collection from a single source.
    ///
    /// Ids are assigned in input order; any pre-set ids or sources on the
    /// profiles are overwritten.
    pub fn dirty(mut profiles: Vec<Profile>) -> Self {
        for (i, p) in profiles.iter_mut().enumerate() {
            p.id = ProfileId(i as u32);
            p.source = SourceId(0);
        }
        let separator = profiles.len() as u32;
        ProfileCollection {
            kind: ErKind::Dirty,
            profiles,
            separator,
        }
    }

    /// Build a clean–clean collection from two sources.
    pub fn clean_clean(source0: Vec<Profile>, source1: Vec<Profile>) -> Self {
        let separator = source0.len() as u32;
        let mut profiles = source0;
        profiles.extend(source1);
        for (i, p) in profiles.iter_mut().enumerate() {
            p.id = ProfileId(i as u32);
            p.source = SourceId(u8::from(i as u32 >= separator));
        }
        ProfileCollection {
            kind: ErKind::CleanClean,
            profiles,
            separator,
        }
    }

    /// Task kind.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Number of profiles across all sources.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when the collection holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles, ordered by id.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Profile by id. Panics on out-of-range ids (ids are dense, so this is
    /// a programming error, not a data error).
    pub fn get(&self, id: ProfileId) -> &Profile {
        &self.profiles[id.index()]
    }

    /// First id belonging to source 1 (clean–clean); equals `len()` for
    /// dirty tasks.
    pub fn separator(&self) -> u32 {
        self.separator
    }

    /// Source of a profile id without touching the profile.
    pub fn source_of(&self, id: ProfileId) -> SourceId {
        SourceId(u8::from(id.0 >= self.separator))
    }

    /// Number of profiles in the given source.
    pub fn source_len(&self, source: SourceId) -> usize {
        match (self.kind, source.0) {
            (_, 0) => self.separator as usize,
            (ErKind::CleanClean, 1) => self.profiles.len() - self.separator as usize,
            _ => 0,
        }
    }

    /// Whether two profiles may be compared under the task kind: always for
    /// dirty ER, cross-source only for clean–clean.
    pub fn is_comparable(&self, a: ProfileId, b: ProfileId) -> bool {
        a != b
            && match self.kind {
                ErKind::Dirty => true,
                ErKind::CleanClean => self.source_of(a) != self.source_of(b),
            }
    }

    /// Total number of comparable pairs — the cost of naive, blocking-free
    /// ER. The evaluation's *reduction ratio* is measured against this.
    pub fn comparable_pairs(&self) -> u64 {
        let n = self.profiles.len() as u64;
        match self.kind {
            ErKind::Dirty => n * n.saturating_sub(1) / 2,
            ErKind::CleanClean => {
                let n0 = self.separator as u64;
                n0 * (n - n0)
            }
        }
    }

    /// Map from `(source, original_id)` to internal id, for resolving
    /// ground-truth files stated in terms of source record ids.
    pub fn original_id_index(&self) -> HashMap<(SourceId, &str), ProfileId> {
        self.profiles
            .iter()
            .map(|p| ((p.source, p.original_id.as_str()), p.id))
            .collect()
    }

    /// Distinct attribute names per source, sorted. Attribute-partitioning
    /// operates on these `(source, attribute)` units.
    pub fn attribute_names(&self) -> Vec<(SourceId, String)> {
        let mut set: std::collections::BTreeSet<(u8, String)> = Default::default();
        for p in &self.profiles {
            for a in &p.attributes {
                set.insert((p.source.0, a.name.clone()));
            }
        }
        set.into_iter().map(|(s, n)| (SourceId(s), n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(oid: &str, name: &str) -> Profile {
        Profile::builder(SourceId(0), oid)
            .attr("name", name)
            .build()
    }

    #[test]
    fn dirty_assigns_dense_ids() {
        let c = ProfileCollection::dirty(vec![profile("a", "x"), profile("b", "y")]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.profiles()[0].id, ProfileId(0));
        assert_eq!(c.profiles()[1].id, ProfileId(1));
        assert_eq!(c.kind(), ErKind::Dirty);
        assert_eq!(c.separator(), 2);
    }

    #[test]
    fn clean_clean_separator_and_sources() {
        let c = ProfileCollection::clean_clean(
            vec![profile("a", "x")],
            vec![profile("b", "y"), profile("c", "z")],
        );
        assert_eq!(c.separator(), 1);
        assert_eq!(c.source_of(ProfileId(0)), SourceId(0));
        assert_eq!(c.source_of(ProfileId(1)), SourceId(1));
        assert_eq!(c.source_of(ProfileId(2)), SourceId(1));
        assert_eq!(c.get(ProfileId(2)).source, SourceId(1));
        assert_eq!(c.source_len(SourceId(0)), 1);
        assert_eq!(c.source_len(SourceId(1)), 2);
    }

    #[test]
    fn comparability_rules() {
        let dirty = ProfileCollection::dirty(vec![profile("a", "x"), profile("b", "y")]);
        assert!(dirty.is_comparable(ProfileId(0), ProfileId(1)));
        assert!(!dirty.is_comparable(ProfileId(0), ProfileId(0)));

        let cc = ProfileCollection::clean_clean(
            vec![profile("a", "x"), profile("b", "y")],
            vec![profile("c", "z")],
        );
        assert!(!cc.is_comparable(ProfileId(0), ProfileId(1)), "same source");
        assert!(cc.is_comparable(ProfileId(0), ProfileId(2)));
        assert!(
            cc.is_comparable(ProfileId(2), ProfileId(1)),
            "order-insensitive"
        );
    }

    #[test]
    fn comparable_pairs_counts() {
        let dirty =
            ProfileCollection::dirty((0..10).map(|i| profile(&i.to_string(), "v")).collect());
        assert_eq!(dirty.comparable_pairs(), 45);
        let cc = ProfileCollection::clean_clean(
            (0..4).map(|i| profile(&i.to_string(), "v")).collect(),
            (0..6).map(|i| profile(&i.to_string(), "v")).collect(),
        );
        assert_eq!(cc.comparable_pairs(), 24);
        let empty = ProfileCollection::dirty(vec![]);
        assert_eq!(empty.comparable_pairs(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn original_id_index_resolves_per_source() {
        let cc = ProfileCollection::clean_clean(vec![profile("k", "x")], vec![profile("k", "y")]);
        let idx = cc.original_id_index();
        assert_eq!(idx[&(SourceId(0), "k")], ProfileId(0));
        assert_eq!(idx[&(SourceId(1), "k")], ProfileId(1));
    }

    #[test]
    fn attribute_names_across_sources() {
        let s0 = vec![Profile::builder(SourceId(0), "a")
            .attr("name", "x")
            .attr("price", "1")
            .build()];
        let s1 = vec![Profile::builder(SourceId(0), "b")
            .attr("title", "y")
            .build()];
        let cc = ProfileCollection::clean_clean(s0, s1);
        let names = cc.attribute_names();
        assert_eq!(
            names,
            vec![
                (SourceId(0), "name".to_string()),
                (SourceId(0), "price".to_string()),
                (SourceId(1), "title".to_string()),
            ]
        );
    }
}
