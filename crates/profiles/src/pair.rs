//! Normalized profile pairs.

use crate::profile::ProfileId;
use std::fmt;

/// An unordered pair of profile ids, stored normalized (`first < second`).
///
/// Every stage of the pipeline exchanges pairs — candidate pairs after
/// blocking, matching pairs after matching, ground-truth pairs — and
/// normalization makes set membership well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Smaller profile id.
    pub first: ProfileId,
    /// Larger profile id.
    pub second: ProfileId,
}

impl Pair {
    /// Create a normalized pair. Panics if both ids are equal — a profile
    /// never forms a comparison with itself.
    pub fn new(a: ProfileId, b: ProfileId) -> Self {
        assert_ne!(a, b, "a pair requires two distinct profiles");
        if a < b {
            Pair {
                first: a,
                second: b,
            }
        } else {
            Pair {
                first: b,
                second: a,
            }
        }
    }

    /// `true` if `id` is one of the two members.
    pub fn contains(&self, id: ProfileId) -> bool {
        self.first == id || self.second == id
    }

    /// The member that is not `id`; `None` when `id` is not a member.
    pub fn other(&self, id: ProfileId) -> Option<ProfileId> {
        if self.first == id {
            Some(self.second)
        } else if self.second == id {
            Some(self.first)
        } else {
            None
        }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        let p = Pair::new(ProfileId(5), ProfileId(2));
        assert_eq!(p.first, ProfileId(2));
        assert_eq!(p.second, ProfileId(5));
        assert_eq!(p, Pair::new(ProfileId(2), ProfileId(5)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_self_pair() {
        Pair::new(ProfileId(1), ProfileId(1));
    }

    #[test]
    fn contains_and_other() {
        let p = Pair::new(ProfileId(1), ProfileId(9));
        assert!(p.contains(ProfileId(1)));
        assert!(p.contains(ProfileId(9)));
        assert!(!p.contains(ProfileId(3)));
        assert_eq!(p.other(ProfileId(1)), Some(ProfileId(9)));
        assert_eq!(p.other(ProfileId(9)), Some(ProfileId(1)));
        assert_eq!(p.other(ProfileId(3)), None);
    }

    #[test]
    fn display() {
        assert_eq!(
            Pair::new(ProfileId(1), ProfileId(2)).to_string(),
            "(p1, p2)"
        );
    }
}
