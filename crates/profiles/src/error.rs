//! Error type for loaders and parsers.

use std::fmt;

/// Convenience alias used across the loader APIs.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the data loaders (CSV / JSON) and ground-truth
/// resolution.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed CSV input (message, 1-based line number).
    Csv { message: String, line: usize },
    /// Malformed JSON input (message, byte offset).
    Json { message: String, offset: usize },
    /// A ground-truth record references an unknown original id.
    UnknownOriginalId { source: u8, original_id: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Csv { message, line } => write!(f, "csv error at line {line}: {message}"),
            Error::Json { message, offset } => {
                write!(f, "json error at offset {offset}: {message}")
            }
            Error::UnknownOriginalId {
                source,
                original_id,
            } => write!(
                f,
                "ground truth references unknown original id {original_id:?} in source {source}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::Csv {
            message: "unterminated quote".into(),
            line: 3,
        };
        assert_eq!(e.to_string(), "csv error at line 3: unterminated quote");
        let e = Error::UnknownOriginalId {
            source: 1,
            original_id: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error as _;
        let e: Error = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        let e = Error::Json {
            message: "bad".into(),
            offset: 0,
        };
        assert!(e.source().is_none());
    }
}
