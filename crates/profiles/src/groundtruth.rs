//! Ground truth: the set of true matching pairs of a benchmark dataset.

use crate::collection::ProfileCollection;
use crate::error::{Error, Result};
use crate::pair::Pair;
use crate::profile::{ProfileId, SourceId};
use std::collections::HashSet;

/// The reference set of matching profile pairs, in internal-id space.
///
/// The paper's demo uses datasets that "come with a ground-truth that allows
/// to analyze the performances of each SparkER step"; every per-step recall
/// and precision in the evaluation is computed against this set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    matches: HashSet<Pair>,
}

impl GroundTruth {
    /// Build from pairs already in internal-id space.
    pub fn from_pairs(pairs: impl IntoIterator<Item = Pair>) -> Self {
        GroundTruth {
            matches: pairs.into_iter().collect(),
        }
    }

    /// Resolve `(original_id_0, original_id_1)` pairs against a clean–clean
    /// collection (left id from source 0, right from source 1).
    pub fn from_original_ids<'a>(
        collection: &ProfileCollection,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<Self> {
        let index = collection.original_id_index();
        let mut matches = HashSet::new();
        for (a, b) in pairs {
            let pa = *index
                .get(&(SourceId(0), a))
                .ok_or_else(|| Error::UnknownOriginalId {
                    source: 0,
                    original_id: a.to_string(),
                })?;
            let pb = *index
                .get(&(SourceId(1), b))
                .ok_or_else(|| Error::UnknownOriginalId {
                    source: 1,
                    original_id: b.to_string(),
                })?;
            matches.insert(Pair::new(pa, pb));
        }
        Ok(GroundTruth { matches })
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` when there are no known matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, pair: &Pair) -> bool {
        self.matches.contains(pair)
    }

    /// Iterate over all true matches (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Pair> {
        self.matches.iter()
    }

    /// Fraction of true matches present in `candidates` — *pair
    /// completeness* (the blocking literature's name for recall).
    pub fn recall_of<'a>(&self, candidates: impl IntoIterator<Item = &'a Pair>) -> f64 {
        if self.matches.is_empty() {
            return 1.0;
        }
        let found = candidates
            .into_iter()
            .filter(|p| self.matches.contains(p))
            .count();
        found as f64 / self.matches.len() as f64
    }

    /// Fraction of `candidates` that are true matches — *pair quality* (the
    /// blocking literature's name for precision). Returns 0 for an empty
    /// candidate set.
    pub fn precision_of<'a>(&self, candidates: impl IntoIterator<Item = &'a Pair>) -> f64 {
        let mut total = 0usize;
        let mut found = 0usize;
        for p in candidates {
            total += 1;
            if self.matches.contains(p) {
                found += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            found as f64 / total as f64
        }
    }

    /// True matches that are *missing* from `candidates` — the "false
    /// positives" of the paper's Figure 6(d) debug view (ground-truth pairs
    /// lost during blocking).
    pub fn lost_pairs(&self, candidates: &HashSet<Pair>) -> Vec<Pair> {
        let mut lost: Vec<Pair> = self
            .matches
            .iter()
            .filter(|p| !candidates.contains(p))
            .copied()
            .collect();
        lost.sort();
        lost
    }

    /// All true matches involving `id`.
    pub fn matches_of(&self, id: ProfileId) -> Vec<Pair> {
        let mut out: Vec<Pair> = self
            .matches
            .iter()
            .filter(|p| p.contains(id))
            .copied()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn recall_and_precision() {
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(2, 3)]);
        let candidates = [pair(0, 1), pair(0, 2), pair(1, 3)];
        assert!((gt.recall_of(candidates.iter()) - 0.5).abs() < 1e-12);
        assert!((gt.precision_of(candidates.iter()) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth_has_full_recall() {
        let gt = GroundTruth::default();
        assert!(gt.is_empty());
        assert_eq!(gt.recall_of(std::iter::empty()), 1.0);
        assert_eq!(gt.precision_of(std::iter::empty()), 0.0);
    }

    #[test]
    fn lost_pairs_sorted() {
        let gt = GroundTruth::from_pairs(vec![pair(4, 5), pair(0, 1), pair(2, 3)]);
        let kept: HashSet<Pair> = [pair(2, 3)].into_iter().collect();
        assert_eq!(gt.lost_pairs(&kept), vec![pair(0, 1), pair(4, 5)]);
    }

    #[test]
    fn matches_of_profile() {
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(1, 2), pair(3, 4)]);
        assert_eq!(gt.matches_of(ProfileId(1)), vec![pair(0, 1), pair(1, 2)]);
        assert!(gt.matches_of(ProfileId(9)).is_empty());
    }

    #[test]
    fn resolves_original_ids() {
        let coll = ProfileCollection::clean_clean(
            vec![Profile::builder(SourceId(0), "abt-1")
                .attr("n", "x")
                .build()],
            vec![Profile::builder(SourceId(1), "buy-9")
                .attr("n", "x")
                .build()],
        );
        let gt = GroundTruth::from_original_ids(&coll, vec![("abt-1", "buy-9")]).unwrap();
        assert_eq!(gt.len(), 1);
        assert!(gt.contains(&pair(0, 1)));
    }

    #[test]
    fn unknown_original_id_is_an_error() {
        let coll = ProfileCollection::clean_clean(
            vec![Profile::builder(SourceId(0), "a").attr("n", "x").build()],
            vec![Profile::builder(SourceId(1), "b").attr("n", "x").build()],
        );
        let err = GroundTruth::from_original_ids(&coll, vec![("a", "nope")]).unwrap_err();
        assert!(matches!(err, Error::UnknownOriginalId { source: 1, .. }));
    }

    #[test]
    fn duplicate_pairs_collapse() {
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(1, 0), pair(0, 1)]);
        assert_eq!(gt.len(), 1);
        assert_eq!(gt.iter().count(), 1);
    }
}
