//! # sparker-profiles
//!
//! Data model and I/O for entity resolution: entity profiles, attribute
//! values, tokenization, dataset loaders (CSV and a minimal JSON dialect) and
//! ground-truth handling.
//!
//! An *entity profile* is the paper's unit of data: a bag of
//! attribute–value pairs describing one record of one source, with no
//! assumption that sources share a schema. A [`ProfileCollection`] bundles
//! the profiles of an ER task together with the task kind:
//!
//! * **Dirty ER** — a single source that may contain duplicates; every
//!   profile pair is comparable.
//! * **Clean–clean ER** — two individually duplicate-free sources (e.g.
//!   Abt.com vs Buy.com in the paper's demo dataset); only cross-source
//!   pairs are comparable.
//!
//! ```
//! use sparker_profiles::{Profile, ProfileCollection, SourceId};
//!
//! let p1 = Profile::builder(SourceId(0), "abt-1")
//!     .attr("name", "Sony Bravia 40in TV")
//!     .attr("price", "699.99")
//!     .build();
//! let p2 = Profile::builder(SourceId(1), "buy-7")
//!     .attr("title", "Sony BRAVIA 40\" Television")
//!     .build();
//! let coll = ProfileCollection::clean_clean(vec![p1], vec![p2]);
//! assert_eq!(coll.len(), 2);
//! assert!(coll.is_comparable(coll.profiles()[0].id, coll.profiles()[1].id));
//! ```

mod attribute;
mod collection;
mod csv;
mod error;
mod groundtruth;
mod json;
mod pair;
mod profile;
mod tokenize;

pub use attribute::Attribute;
pub use collection::{ErKind, ProfileCollection};
pub use csv::{parse_csv, profiles_from_csv, write_csv, CsvOptions};
pub use error::{Error, Result};
pub use groundtruth::GroundTruth;
pub use json::{parse_json, profiles_from_json_lines, JsonValue};
pub use pair::Pair;
pub use profile::{Profile, ProfileBuilder, ProfileId, SourceId};
pub use tokenize::{ngrams, tokenize, tokenize_filtered, Token};
