//! # sparker-profiles
//!
//! Data model and I/O for entity resolution: entity profiles, attribute
//! values, tokenization, dataset loaders (CSV and a minimal JSON dialect) and
//! ground-truth handling.
//!
//! An *entity profile* is the paper's unit of data: a bag of
//! attribute–value pairs describing one record of one source, with no
//! assumption that sources share a schema. A [`ProfileCollection`] bundles
//! the profiles of an ER task together with the task kind:
//!
//! * **Dirty ER** — a single source that may contain duplicates; every
//!   profile pair is comparable.
//! * **Clean–clean ER** — two individually duplicate-free sources (e.g.
//!   Abt.com vs Buy.com in the paper's demo dataset); only cross-source
//!   pairs are comparable.
//!
//! ```
//! use sparker_profiles::{Profile, ProfileCollection, SourceId};
//!
//! let p1 = Profile::builder(SourceId(0), "abt-1")
//!     .attr("name", "Sony Bravia 40in TV")
//!     .attr("price", "699.99")
//!     .build();
//! let p2 = Profile::builder(SourceId(1), "buy-7")
//!     .attr("title", "Sony BRAVIA 40\" Television")
//!     .build();
//! let coll = ProfileCollection::clean_clean(vec![p1], vec![p2]);
//! assert_eq!(coll.len(), 2);
//! assert!(coll.is_comparable(coll.profiles()[0].id, coll.profiles()[1].id));
//! ```
//!
//! ## Dictionary encoding
//!
//! Tokens are the currency of the whole blocker — blocking keys, graph
//! edges, TF-IDF terms. This crate therefore provides [`TokenDict`]: the
//! distinct normalized tokens of a collection interned once (sequentially,
//! or in one parallel pass via [`TokenDict::build_parallel`]) to dense
//! `u32` [`TokenId`]s. Ids are assigned in **lexicographic token order**,
//! so sorting by id is sorting by key string, and structures built over ids
//! come out in exactly the order their string-keyed equivalents would.
//! Downstream crates key every hot path on `TokenId` (flat counting-sort
//! buckets, CSR block graphs, merge-join TF-IDF vectors) and only resolve
//! ids back to strings at the edges via [`TokenDict::resolve`].
//!
//! Single-pass pipelines use [`DictBuilder`] instead of build-then-lookup:
//! it interns tokens to provisional insertion-order ids while the caller
//! streams the collection, then [`DictBuilder::finish`] sorts the
//! vocabulary and returns the permutation that turns the recorded
//! provisional ids into final lexicographic ids — one tokenization pass,
//! one hash probe per occurrence, no binary searches.
//!
//! ```
//! use sparker_profiles::{Profile, ProfileCollection, SourceId, TokenDict};
//!
//! let coll = ProfileCollection::dirty(vec![
//!     Profile::builder(SourceId(0), "a").attr("name", "Sony BRAVIA").build(),
//! ]);
//! let dict = TokenDict::build(&coll);
//! let id = dict.lookup("bravia").unwrap();
//! assert_eq!(dict.resolve(id), "bravia");
//! ```

mod attribute;
mod collection;
mod csv;
mod dict;
mod error;
mod groundtruth;
mod json;
mod pair;
mod profile;
mod spillcodec;
mod tokenize;

pub use attribute::Attribute;
pub use collection::{ErKind, ProfileCollection};
pub use csv::{parse_csv, profiles_from_csv, write_csv, CsvOptions};
pub use dict::{DictBuilder, TokenDict, TokenId};
pub use error::{Error, Result};
pub use groundtruth::GroundTruth;
pub use json::{parse_json, profiles_from_json_lines, JsonValue};
pub use pair::Pair;
pub use profile::{Profile, ProfileBuilder, ProfileId, SourceId};
pub use tokenize::{each_token, ngrams, tokenize, tokenize_filtered, Token};
