//! [`SpillCodec`] implementations for the domain identifier types, so the
//! engine's spillable shuffles and external sorts can move them through
//! the on-disk batch format. Each codec is the identifier's raw
//! little-endian integer encoding — round-trips are trivially bit-exact.

use crate::dict::TokenId;
use crate::pair::Pair;
use crate::profile::{ProfileId, SourceId};
use sparker_dataflow::SpillCodec;

impl SpillCodec for ProfileId {
    fn encoded_len(&self) -> usize {
        4
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u32::decode(input).map(ProfileId)
    }
}

impl SpillCodec for SourceId {
    fn encoded_len(&self) -> usize {
        1
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u8::decode(input).map(SourceId)
    }
}

impl SpillCodec for TokenId {
    fn encoded_len(&self) -> usize {
        4
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u32::decode(input).map(TokenId)
    }
}

impl SpillCodec for Pair {
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.first.encode(out);
        self.second.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let first = ProfileId::decode(input)?;
        let second = ProfileId::decode(input)?;
        Some(Pair { first, second })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SpillCodec + Copy + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        assert_eq!(buf.len(), value.encoded_len());
        let mut cursor: &[u8] = &buf;
        assert_eq!(T::decode(&mut cursor), Some(value));
        assert!(cursor.is_empty());
    }

    #[test]
    fn id_codecs_round_trip() {
        round_trip(ProfileId(0));
        round_trip(ProfileId(u32::MAX));
        round_trip(SourceId(0));
        round_trip(SourceId(255));
        round_trip(TokenId(12345));
        round_trip(Pair::new(ProfileId(7), ProfileId(3)));
    }

    #[test]
    fn pair_decode_preserves_normalization() {
        let p = Pair::new(ProfileId(9), ProfileId(2));
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = Pair::decode(&mut cursor).unwrap();
        assert!(back.first < back.second);
        assert_eq!(back, p);
    }
}
