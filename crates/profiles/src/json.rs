//! Minimal JSON parser and profile loader.
//!
//! SparkER's loaders accept JSON datasets (one object per line). To keep the
//! workspace on the allowed dependency set, this is a small hand-rolled
//! recursive-descent parser covering the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null). It is not speed-optimized
//! — dataset loading is a negligible fraction of pipeline time.

use crate::error::{Error, Result};
use crate::profile::{Profile, SourceId};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so
/// serialization and iteration are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value as attribute text: strings verbatim, scalars via
    /// `Display`, arrays/objects recursively space-joined. ER treats all
    /// values as text.
    pub fn to_text(&self) -> String {
        match self {
            JsonValue::Null => String::new(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Number(n) => format_number(*n),
            JsonValue::String(s) => s.clone(),
            JsonValue::Array(items) => items
                .iter()
                .map(JsonValue::to_text)
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(" "),
            JsonValue::Object(map) => map
                .values()
                .map(JsonValue::to_text)
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(" "),
        }
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for JsonValue {
    /// Serialize back to JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{}", format_number(*n)),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parse a complete JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::Json {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Load profiles from JSON-lines text: one object per non-empty line; every
/// key becomes an attribute (arrays become one attribute per element), with
/// `id_key` (when present) used as the original id.
pub fn profiles_from_json_lines(
    text: &str,
    source: SourceId,
    id_key: &str,
) -> Result<Vec<Profile>> {
    let mut profiles = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line)?;
        let JsonValue::Object(map) = value else {
            return Err(Error::Json {
                message: format!("line {} is not a JSON object", lineno + 1),
                offset: 0,
            });
        };
        let original_id = map
            .get(id_key)
            .map(JsonValue::to_text)
            .unwrap_or_else(|| lineno.to_string());
        let mut b = Profile::builder(source, original_id);
        for (k, v) in &map {
            if k == id_key {
                continue;
            }
            match v {
                JsonValue::Array(items) => {
                    for item in items {
                        b = b.attr(k.clone(), item.to_text());
                    }
                }
                other => {
                    b = b.attr(k.clone(), other.to_text());
                }
            }
        }
        profiles.push(b.build());
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse_json("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse_json("\"hi\"").unwrap(),
            JsonValue::String("hi".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        let JsonValue::Object(map) = &v else { panic!() };
        assert_eq!(map.len(), 2);
        let JsonValue::Array(items) = &map["a"] else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let input = r#""line\nbreak \"quoted\" tab\t back\\slash""#;
        let v = parse_json(input).unwrap();
        assert_eq!(
            v.as_str().unwrap(),
            "line\nbreak \"quoted\" tab\t back\\slash"
        );
        // Display re-escapes; reparsing gives the same value.
        assert_eq!(parse_json(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_incl_surrogates() {
        assert_eq!(parse_json(r#""é""#).unwrap().as_str().unwrap(), "é");
        assert_eq!(parse_json(r#""😀""#).unwrap().as_str().unwrap(), "😀");
        assert!(parse_json(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_json("{\"a\": }").unwrap_err();
        assert!(matches!(err, Error::Json { .. }));
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("12 34").is_err(), "trailing data");
        assert!(parse_json("").is_err());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse_json(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        let JsonValue::Object(map) = v else { panic!() };
        assert_eq!(
            map["a"],
            JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(2.0)])
        );
    }

    #[test]
    fn display_serializes_sorted_keys() {
        let v = parse_json(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn to_text_flattens() {
        let v = parse_json(r#"{"authors":["A. One","B. Two"],"year":2017,"ok":true}"#).unwrap();
        assert_eq!(v.to_text(), "A. One B. Two true 2017");
        assert_eq!(JsonValue::Null.to_text(), "");
        assert_eq!(JsonValue::Number(2.5).to_text(), "2.5");
    }

    #[test]
    fn profiles_from_json_lines_basic() {
        let text = concat!(
            "{\"realId\":\"b1\",\"title\":\"Blast\",\"authors\":[\"Simonini\",\"Bergamaschi\"]}\n",
            "\n",
            "{\"title\":\"SparkER\",\"year\":2017}\n",
        );
        let ps = profiles_from_json_lines(text, SourceId(0), "realId").unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].original_id, "b1");
        let authors: Vec<&str> = ps[0].values_of("authors").collect();
        assert_eq!(authors, vec!["Simonini", "Bergamaschi"]);
        assert_eq!(
            ps[1].original_id, "2",
            "missing id falls back to line number"
        );
        assert_eq!(ps[1].value_of("year"), Some("2017"));
    }

    #[test]
    fn non_object_line_is_error() {
        assert!(profiles_from_json_lines("[1,2]\n", SourceId(0), "id").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(2.0), "2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(-0.0), "0");
    }
}
