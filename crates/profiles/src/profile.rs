//! Entity profiles and their identifiers.

use crate::attribute::Attribute;
use crate::tokenize::{tokenize, Token};
use std::collections::BTreeSet;
use std::fmt;

/// Internal numeric identifier of a profile, unique within a
/// [`crate::ProfileCollection`].
///
/// Profile ids are dense (`0..collection.len()`), assigned in insertion
/// order, so algorithm crates can use them as vector indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProfileId(pub u32);

impl ProfileId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a data source (0 or 1 for clean–clean ER, always 0 for
/// dirty ER).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SourceId(pub u8);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source{}", self.0)
    }
}

/// An entity profile: a record from one source, represented schema-lessly as
/// a list of attribute–value pairs.
///
/// The paper treats profiles as bags of words when blocking
/// (schema-agnostic) and as attribute-partitioned token sets when using
/// Blast's loose schema information — both views are derived from this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Dense internal id (assigned by the owning collection; `u32::MAX`
    /// before insertion).
    pub id: ProfileId,
    /// Which source this profile comes from.
    pub source: SourceId,
    /// The source's own identifier for the record (e.g. the key in the
    /// published ground truth).
    pub original_id: String,
    /// Attribute–value pairs, in input order. Attribute names may repeat.
    pub attributes: Vec<Attribute>,
}

impl Profile {
    /// Start building a profile for `source` with external id `original_id`.
    pub fn builder(source: SourceId, original_id: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder {
            source,
            original_id: original_id.into(),
            attributes: Vec::new(),
        }
    }

    /// All values of the attribute called `name`, in input order.
    pub fn values_of<'a, 'b: 'a>(&'a self, name: &'b str) -> impl Iterator<Item = &'a str> + 'a {
        self.attributes
            .iter()
            .filter(move |a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The first value of attribute `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Distinct attribute names, sorted (a profile-local schema view).
    pub fn attribute_names(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.attributes.iter().map(|a| a.name.as_str()).collect();
        set.into_iter().collect()
    }

    /// The schema-agnostic token bag: every token of every attribute value,
    /// deduplicated and sorted. This is exactly the paper's "profile as a
    /// bag of words" used by schema-agnostic Token Blocking.
    pub fn token_set(&self) -> BTreeSet<Token> {
        let mut set = BTreeSet::new();
        for a in &self.attributes {
            for t in tokenize(&a.value) {
                set.insert(t);
            }
        }
        set
    }

    /// Token set of a single attribute value string.
    pub fn tokens_of(&self, name: &str) -> BTreeSet<Token> {
        let mut set = BTreeSet::new();
        for v in self.values_of(name) {
            for t in tokenize(v) {
                set.insert(t);
            }
        }
        set
    }

    /// Concatenation of all values (used by whole-profile similarity
    /// measures in the matcher).
    pub fn concatenated_values(&self) -> String {
        let mut s = String::new();
        for a in &self.attributes {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&a.value);
        }
        s
    }

    /// `true` if the profile has no attributes or only empty values.
    pub fn is_blank(&self) -> bool {
        self.attributes.iter().all(|a| a.value.trim().is_empty())
    }
}

/// Builder for [`Profile`]; see [`Profile::builder`].
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    source: SourceId,
    original_id: String,
    attributes: Vec<Attribute>,
}

impl ProfileBuilder {
    /// Append one attribute–value pair. Empty values are kept out of the
    /// profile (they carry no blocking or matching signal and real loaders
    /// produce many of them).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let value: String = value.into();
        if !value.trim().is_empty() {
            self.attributes.push(Attribute::new(name, value));
        }
        self
    }

    /// Finish. The id is a placeholder until the profile joins a
    /// [`crate::ProfileCollection`].
    pub fn build(self) -> Profile {
        Profile {
            id: ProfileId(u32::MAX),
            source: self.source,
            original_id: self.original_id,
            attributes: self.attributes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile::builder(SourceId(0), "r1")
            .attr("name", "Blast")
            .attr("authors", "G. Simonini")
            .attr("authors", "S. Bergamaschi")
            .attr("abstract", "how to improve meta-blocking")
            .attr("empty", "   ")
            .build()
    }

    #[test]
    fn builder_skips_blank_values() {
        let p = sample();
        assert_eq!(p.attributes.len(), 4);
        assert!(p.value_of("empty").is_none());
    }

    #[test]
    fn values_of_returns_all_occurrences_in_order() {
        let p = sample();
        let authors: Vec<&str> = p.values_of("authors").collect();
        assert_eq!(authors, vec!["G. Simonini", "S. Bergamaschi"]);
        assert_eq!(p.value_of("authors"), Some("G. Simonini"));
    }

    #[test]
    fn attribute_names_sorted_distinct() {
        let p = sample();
        assert_eq!(p.attribute_names(), vec!["abstract", "authors", "name"]);
    }

    #[test]
    fn token_set_is_schema_agnostic() {
        let p = sample();
        let tokens = p.token_set();
        // "Simonini" appears under authors; "blast" under name; casing folded.
        assert!(tokens.contains("simonini"));
        assert!(tokens.contains("blast"));
        assert!(tokens.contains("meta"));
        assert!(!tokens.contains("G")); // single-letter initials survive as "g"
        assert!(tokens.contains("g"));
    }

    #[test]
    fn tokens_of_restricts_to_attribute() {
        let p = sample();
        assert!(p.tokens_of("name").contains("blast"));
        assert!(!p.tokens_of("name").contains("simonini"));
    }

    #[test]
    fn concatenated_values_joins_with_spaces() {
        let p = Profile::builder(SourceId(0), "x")
            .attr("a", "one")
            .attr("b", "two")
            .build();
        assert_eq!(p.concatenated_values(), "one two");
    }

    #[test]
    fn blank_profile_detection() {
        let p = Profile::builder(SourceId(0), "x").build();
        assert!(p.is_blank());
        assert!(!sample().is_blank());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProfileId(3).to_string(), "p3");
        assert_eq!(SourceId(1).to_string(), "source1");
        assert_eq!(ProfileId(7).index(), 7);
    }
}
