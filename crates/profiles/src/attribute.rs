//! Attribute–value pairs.

use std::fmt;

/// One attribute–value pair of an entity profile.
///
/// Attribute names are *per source*: clean–clean ER sources need not share a
/// schema, which is exactly the heterogeneity the paper's loose-schema
/// approach handles (it clusters similar attributes across sources instead
/// of requiring schema alignment).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute {
    /// Attribute name as it appears in the source (e.g. `"name"`,
    /// `"title"`).
    pub name: String,
    /// Raw textual value.
    pub value: String,
}

impl Attribute {
    /// Create an attribute–value pair.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let a = Attribute::new("name", "Blast");
        assert_eq!(a.name, "name");
        assert_eq!(a.value, "Blast");
        assert_eq!(a.to_string(), "name=Blast");
    }

    #[test]
    fn ordering_is_by_name_then_value() {
        let mut v = vec![
            Attribute::new("b", "1"),
            Attribute::new("a", "2"),
            Attribute::new("a", "1"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Attribute::new("a", "1"),
                Attribute::new("a", "2"),
                Attribute::new("b", "1"),
            ]
        );
    }
}
