//! # sparker-looseschema
//!
//! Blast's *loose schema information* (Figure 2 of the paper), the
//! ingredient that upgrades schema-agnostic blocking without requiring
//! schema alignment:
//!
//! 1. **Attribute partitioning** — attributes are clustered by the
//!    similarity of their *values*: MinHash/LSH proposes candidate attribute
//!    pairs, each attribute keeps only its most similar partner, and the
//!    transitive closure of those pairs yields non-overlapping partitions.
//!    Attributes similar to nothing fall into a *blob* partition.
//! 2. **Entropy extraction** — the Shannon entropy of each partition's
//!    token distribution. High-entropy partitions (e.g. product names) are
//!    more discriminative than low-entropy ones (e.g. prices), and
//!    meta-blocking later re-weights edges by this entropy.
//! 3. **Loose-schema blocking keys** — each token is concatenated with the
//!    partition id of the attribute it came from, so "simonini" as an
//!    author and "simonini" as a cited name become different blocking keys
//!    (`simonini_1` vs `simonini_2` in the paper's example).
//!
//! ```
//! use sparker_profiles::{Profile, ProfileCollection, SourceId};
//! use sparker_looseschema::{partition_attributes, LshConfig};
//!
//! let s0: Vec<Profile> = (0..20).map(|i| {
//!     Profile::builder(SourceId(0), i.to_string())
//!         .attr("name", format!("product widget alpha {i}"))
//!         .attr("price", format!("{}.99", i))
//!         .build()
//! }).collect();
//! let s1: Vec<Profile> = (0..20).map(|i| {
//!     Profile::builder(SourceId(1), i.to_string())
//!         .attr("title", format!("widget product alpha {i}"))
//!         .attr("cost", format!("{}.99", i))
//!         .build()
//! }).collect();
//! let coll = ProfileCollection::clean_clean(s0, s1);
//! let parts = partition_attributes(&coll, &LshConfig::default());
//! // name/title end up together, price/cost together.
//! assert_eq!(
//!     parts.partition_of(SourceId(0), "name"),
//!     parts.partition_of(SourceId(1), "title"),
//! );
//! assert_ne!(
//!     parts.partition_of(SourceId(0), "name"),
//!     parts.partition_of(SourceId(0), "price"),
//! );
//! ```

mod entropy;
mod keys;
mod lsh;
mod minhash;
mod partitioning;

pub use entropy::shannon_entropy;
pub use keys::loose_schema_keys;
pub use lsh::{lsh_candidate_pairs, LshConfig};
pub use minhash::MinHasher;
pub use partitioning::{
    partition_attributes, AttributePartition, AttributePartitioning, PartitionId,
};
