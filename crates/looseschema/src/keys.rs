//! Loose-schema blocking keys: token ⧺ attribute-partition id.

use crate::partitioning::AttributePartitioning;
use sparker_profiles::{tokenize, Profile};
use std::collections::BTreeSet;

/// The blocking keys of a profile under loose-schema blocking (Figure 2(b)
/// of the paper): every token of every value, suffixed with the partition
/// id of the attribute it occurs in.
///
/// The same token under attributes of different partitions yields distinct
/// keys — disambiguating, e.g., "simonini" as an author (`simonini_1`) from
/// "simonini" cited in an abstract (`simonini_2`).
pub fn loose_schema_keys(profile: &Profile, partitioning: &AttributePartitioning) -> Vec<String> {
    let mut keys: BTreeSet<String> = BTreeSet::new();
    for a in &profile.attributes {
        let pid = partitioning.partition_of(profile.source, &a.name);
        for t in tokenize(&a.value) {
            keys.insert(format!("{t}_{pid}"));
        }
    }
    keys.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{ProfileCollection, SourceId};

    fn figure2_collection() -> ProfileCollection {
        let p1 = Profile::builder(SourceId(0), "p1")
            .attr("Name", "Blast")
            .attr("Authors", "G. Simonini")
            .attr("Abstract", "how to improve meta-blocking")
            .build();
        let p2 = Profile::builder(SourceId(0), "p2")
            .attr("Name", "SparkER")
            .attr("Authors", "L. Gagliardelli")
            .attr("Abstract", "Simonini et al proposed blocking")
            .build();
        let p3 = Profile::builder(SourceId(1), "p3")
            .attr("title", "Blast: loosely schema blocking")
            .attr("author", "Giovanni Simonini")
            .build();
        let p4 = Profile::builder(SourceId(1), "p4")
            .attr("title", "SparkER: parallel Blast")
            .attr("author", "Luca Gagliardelli")
            .build();
        ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4])
    }

    #[test]
    fn same_token_in_different_partitions_splits() {
        // Manual partitioning mirroring Figure 2(a): authors together,
        // names/titles/abstracts together.
        let coll = figure2_collection();
        let parts = AttributePartitioning::manual(
            &coll,
            vec![
                vec![
                    (SourceId(0), "Authors".to_string()),
                    (SourceId(1), "author".to_string()),
                ],
                vec![
                    (SourceId(0), "Name".to_string()),
                    (SourceId(0), "Abstract".to_string()),
                    (SourceId(1), "title".to_string()),
                ],
            ],
        );
        // p1: "Simonini" appears as an author → simonini_0.
        let k1 = loose_schema_keys(&coll.profiles()[0], &parts);
        assert!(k1.contains(&"simonini_0".to_string()), "keys: {k1:?}");
        // p2: "Simonini" appears in the abstract → simonini_1.
        let k2 = loose_schema_keys(&coll.profiles()[1], &parts);
        assert!(k2.contains(&"simonini_1".to_string()), "keys: {k2:?}");
        assert!(!k2.contains(&"simonini_0".to_string()));
        // p3 has Simonini as author → shares simonini_0 with p1, not p2:
        // the paper's point that "Simonini_1 do not generate any block
        // [with p2]".
        let k3 = loose_schema_keys(&coll.profiles()[2], &parts);
        assert!(k3.contains(&"simonini_0".to_string()));
    }

    #[test]
    fn blob_partitioning_reduces_to_suffixed_token_blocking() {
        let coll = figure2_collection();
        let parts = AttributePartitioning::manual(&coll, vec![]);
        let blob = parts.blob_id();
        let keys = loose_schema_keys(&coll.profiles()[0], &parts);
        let expected: Vec<String> = coll.profiles()[0]
            .token_set()
            .into_iter()
            .map(|t| format!("{t}_{blob}"))
            .collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn keys_deduplicated_and_sorted() {
        let coll = ProfileCollection::dirty(vec![Profile::builder(SourceId(0), "x")
            .attr("a", "dup dup")
            .attr("b", "dup")
            .build()]);
        let parts = AttributePartitioning::manual(&coll, vec![]);
        let keys = loose_schema_keys(&coll.profiles()[0], &parts);
        assert_eq!(keys.len(), 1, "same token, same (blob) partition: one key");
    }
}
