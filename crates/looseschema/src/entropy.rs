//! Shannon entropy of token distributions.

/// Shannon entropy (bits) of a frequency distribution.
///
/// The entropy extractor computes this per attribute partition: "finding
/// equalities inside a cluster with a high variability of the values (i.e.
/// high entropy) has more value than finding them in a cluster with low
/// variability" — meta-blocking multiplies edge weights by it.
pub fn shannon_entropy(counts: impl IntoIterator<Item = u64>) -> f64 {
    let mut counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    // Floating-point summation is order-sensitive; callers often supply
    // counts straight out of a HashMap, whose iteration order varies
    // between runs. Sort so the entropy is a pure function of the
    // distribution.
    counts.sort_unstable();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_is_log_n() {
        let h = shannon_entropy(vec![1, 1, 1, 1]);
        assert!((h - 2.0).abs() < 1e-12);
        let h8 = shannon_entropy(vec![5; 8]);
        assert!((h8 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_symbol_is_zero() {
        assert_eq!(shannon_entropy(vec![42]), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(shannon_entropy(Vec::<u64>::new()), 0.0);
        assert_eq!(shannon_entropy(vec![0, 0]), 0.0);
    }

    #[test]
    fn skew_lowers_entropy() {
        let uniform = shannon_entropy(vec![10, 10]);
        let skewed = shannon_entropy(vec![19, 1]);
        assert!(skewed < uniform);
        assert!(skewed > 0.0);
    }

    #[test]
    fn zero_counts_ignored() {
        assert_eq!(shannon_entropy(vec![3, 0, 3]), shannon_entropy(vec![3, 3]));
    }
}
