//! Attribute partitioning: the first half of the loose schema generator.

use crate::entropy::shannon_entropy;
use crate::lsh::{lsh_candidate_pairs, signatures_of, LshConfig};
use crate::minhash::exact_jaccard;
use sparker_clustering::UnionFind;
use sparker_profiles::{each_token, ErKind, ProfileCollection, SourceId, TokenDict, TokenId};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an attribute partition; also the suffix appended to
/// loose-schema blocking keys (`token_<id>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One partition of attributes plus its Shannon entropy.
#[derive(Debug, Clone)]
pub struct AttributePartition {
    /// Partition id (dense; the blob is always the last id).
    pub id: PartitionId,
    /// Member attributes as `(source, name)`, sorted.
    pub attributes: Vec<(SourceId, String)>,
    /// Shannon entropy of the partition's token distribution.
    pub entropy: f64,
    /// `true` for the blob partition collecting unclustered attributes.
    pub is_blob: bool,
}

/// The loose schema information: a non-overlapping partition of all
/// attributes, each with its entropy (Figure 2(a) of the paper).
#[derive(Debug, Clone)]
pub struct AttributePartitioning {
    partitions: Vec<AttributePartition>,
    lookup: HashMap<(u8, String), u32>,
}

impl AttributePartitioning {
    /// All partitions, blob last.
    pub fn partitions(&self) -> &[AttributePartition] {
        &self.partitions
    }

    /// Number of partitions including the blob.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Never true — the blob partition always exists. Present to satisfy
    /// the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// `true` if only the blob exists (the schema-agnostic degenerate case,
    /// which the demo reaches by setting the threshold to 1).
    pub fn is_schema_agnostic(&self) -> bool {
        self.partitions.len() == 1
    }

    /// Id of the blob partition.
    pub fn blob_id(&self) -> PartitionId {
        self.partitions
            .last()
            .map(|p| p.id)
            .expect("blob partition always exists")
    }

    /// Partition of an attribute; unknown attributes fall into the blob
    /// (they were never seen, so there is no evidence to place them
    /// anywhere more specific).
    pub fn partition_of(&self, source: SourceId, name: &str) -> PartitionId {
        self.lookup
            .get(&(source.0, name.to_string()))
            .map(|&i| PartitionId(i))
            .unwrap_or_else(|| self.blob_id())
    }

    /// Entropy of a partition.
    pub fn entropy_of(&self, id: PartitionId) -> f64 {
        self.partitions[id.0 as usize].entropy
    }

    /// Maximum entropy over all partitions (≥ 0); used to normalize
    /// entropy weights in meta-blocking.
    pub fn max_entropy(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| p.entropy)
            .fold(0.0, f64::max)
    }

    /// Build a partitioning from explicit attribute groups — the paper's
    /// supervised mode, where the user edits the clusters in the GUI
    /// (Figure 6(c)). Attributes not mentioned in any group go to the blob.
    /// Entropies are recomputed from the collection.
    pub fn manual(
        collection: &ProfileCollection,
        groups: Vec<Vec<(SourceId, String)>>,
    ) -> AttributePartitioning {
        let all = collection.attribute_names();
        let mut lookup: HashMap<(u8, String), u32> = HashMap::new();
        let mut partitions: Vec<AttributePartition> = Vec::new();
        for (i, mut group) in groups.into_iter().enumerate() {
            group.sort();
            group.dedup();
            for (s, n) in &group {
                lookup.insert((s.0, n.clone()), i as u32);
            }
            partitions.push(AttributePartition {
                id: PartitionId(i as u32),
                attributes: group,
                entropy: 0.0,
                is_blob: false,
            });
        }
        let blob_id = partitions.len() as u32;
        let mut blob_members: Vec<(SourceId, String)> = Vec::new();
        for (s, n) in all {
            if let std::collections::hash_map::Entry::Vacant(e) = lookup.entry((s.0, n.clone())) {
                e.insert(blob_id);
                blob_members.push((s, n));
            }
        }
        partitions.push(AttributePartition {
            id: PartitionId(blob_id),
            attributes: blob_members,
            entropy: 0.0,
            is_blob: true,
        });
        let mut out = AttributePartitioning { partitions, lookup };
        out.compute_entropies(&TokenDict::build(collection), collection);
        out
    }

    /// Recompute each partition's entropy from the token distribution of
    /// the collection's values (the Entropy Extractor sub-module).
    ///
    /// Counts are accumulated into dense per-partition arrays indexed by
    /// [`TokenId`] — no string hashing, and a deterministic summation
    /// order inside [`shannon_entropy`].
    fn compute_entropies(&mut self, dict: &TokenDict, collection: &ProfileCollection) {
        let mut counts: Vec<Vec<u64>> = vec![vec![0u64; dict.len()]; self.partitions.len()];
        let mut scratch = String::new();
        for p in collection.profiles() {
            for a in &p.attributes {
                let pid = self.partition_of(p.source, &a.name);
                let bucket = &mut counts[pid.0 as usize];
                each_token(&a.value, &mut scratch, |t| {
                    if let Some(id) = dict.lookup(t) {
                        bucket[id.index()] += 1;
                    }
                });
            }
        }
        for (partition, tokens) in self.partitions.iter_mut().zip(counts) {
            partition.entropy = shannon_entropy(tokens.into_iter().filter(|&c| c > 0));
        }
    }
}

/// The LSH-based attribute partitioning algorithm (Loose Schema Generator,
/// Figure 4): MinHash/LSH proposes candidate attribute pairs by value
/// similarity; each attribute keeps only its most similar partner (if its
/// exact Jaccard reaches `config.threshold`); the transitive closure of the
/// kept pairs forms the partitions; everything else lands in the blob.
///
/// For clean–clean tasks only cross-source partners are considered — the
/// point of the loose schema is aligning the two sources' attributes.
pub fn partition_attributes(
    collection: &ProfileCollection,
    config: &LshConfig,
) -> AttributePartitioning {
    // The demo's semantics: "setting the threshold to the maximum value (1)
    // e.g a schema-agnostic token blocking is applied and all the
    // attributes fall in the same blob cluster". Honour that exactly —
    // at threshold ≥ 1 nothing clusters, even identical attributes.
    if config.threshold >= 1.0 {
        return AttributePartitioning::manual(collection, vec![]);
    }
    let attrs = collection.attribute_names();
    let n = attrs.len();

    // Interned token set per attribute: MinHash/LSH and the exact-Jaccard
    // verification below hash and merge dense `TokenId`s, never strings.
    let dict = TokenDict::build(collection);
    let mut token_sets: Vec<Vec<TokenId>> = vec![Vec::new(); n];
    let index: HashMap<(u8, &str), usize> = attrs
        .iter()
        .enumerate()
        .map(|(i, (s, name))| ((s.0, name.as_str()), i))
        .collect();
    let mut scratch = String::new();
    for p in collection.profiles() {
        for a in &p.attributes {
            if let Some(&i) = index.get(&(p.source.0, a.name.as_str())) {
                let set = &mut token_sets[i];
                each_token(&a.value, &mut scratch, |t| {
                    if let Some(id) = dict.lookup(t) {
                        set.push(id);
                    }
                });
            }
        }
    }
    for set in &mut token_sets {
        set.sort_unstable();
        set.dedup();
    }

    // LSH candidates → exact Jaccard → best partner per attribute.
    let (_, sigs) = signatures_of(&token_sets, config.num_hashes, config.seed);
    let candidates = lsh_candidate_pairs(&sigs, config);
    let cross_source_only = collection.kind() == ErKind::CleanClean;

    let mut best: Vec<Option<(usize, f64)>> = vec![None; n];
    for (i, j) in candidates {
        if cross_source_only && attrs[i].0 == attrs[j].0 {
            continue;
        }
        let sim = exact_jaccard(&token_sets[i], &token_sets[j]);
        if sim < config.threshold || sim == 0.0 {
            continue;
        }
        for (a, b) in [(i, j), (j, i)] {
            match best[a] {
                Some((prev, prev_sim))
                    if (prev_sim, std::cmp::Reverse(prev)) >= (sim, std::cmp::Reverse(b)) => {}
                _ => best[a] = Some((b, sim)),
            }
        }
    }

    // Transitive closure of the best-partner pairs.
    let mut uf = UnionFind::new(n);
    for (i, partner) in best.iter().enumerate() {
        if let Some((j, _)) = partner {
            uf.union(i, *j);
        }
    }
    let labels = uf.labels();

    // Components of size ≥ 2 become partitions; singletons go to the blob.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(i);
    }
    let mut clustered: Vec<Vec<usize>> = groups
        .into_values()
        .filter(|members| members.len() >= 2)
        .collect();
    clustered.sort_by_key(|members| members[0]);

    let mut lookup: HashMap<(u8, String), u32> = HashMap::new();
    let mut partitions: Vec<AttributePartition> = Vec::new();
    for (pid, members) in clustered.iter().enumerate() {
        let attributes: Vec<(SourceId, String)> =
            members.iter().map(|&i| attrs[i].clone()).collect();
        for (s, name) in &attributes {
            lookup.insert((s.0, name.clone()), pid as u32);
        }
        partitions.push(AttributePartition {
            id: PartitionId(pid as u32),
            attributes,
            entropy: 0.0,
            is_blob: false,
        });
    }
    let blob_id = partitions.len() as u32;
    let mut blob_members = Vec::new();
    for (i, attr) in attrs.iter().enumerate() {
        if !clustered.iter().any(|m| m.contains(&i)) {
            lookup.insert((attr.0 .0, attr.1.clone()), blob_id);
            blob_members.push(attr.clone());
        }
    }
    partitions.push(AttributePartition {
        id: PartitionId(blob_id),
        attributes: blob_members,
        entropy: 0.0,
        is_blob: true,
    });

    let mut out = AttributePartitioning { partitions, lookup };
    out.compute_entropies(&dict, collection);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::Profile;

    /// Two product sources with aligned-but-renamed attributes.
    fn product_collection() -> ProfileCollection {
        let names = [
            "sony bravia tv",
            "samsung galaxy phone",
            "apple macbook laptop",
            "dell xps laptop",
            "lg oled tv",
            "bose quiet headphones",
            "canon eos camera",
            "nikon d5 camera",
            "sony walkman player",
            "jbl charge speaker",
        ];
        let s0: Vec<Profile> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Profile::builder(SourceId(0), format!("a{i}"))
                    .attr("name", *n)
                    .attr("price", format!("{}.99", 100 + i))
                    .build()
            })
            .collect();
        let s1: Vec<Profile> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Profile::builder(SourceId(1), format!("b{i}"))
                    .attr("title", format!("{n} new"))
                    .attr("cost", format!("{}.99", 100 + i))
                    .build()
            })
            .collect();
        ProfileCollection::clean_clean(s0, s1)
    }

    #[test]
    fn aligned_attributes_cluster_together() {
        let parts = partition_attributes(&product_collection(), &LshConfig::default());
        let name = parts.partition_of(SourceId(0), "name");
        let title = parts.partition_of(SourceId(1), "title");
        let price = parts.partition_of(SourceId(0), "price");
        let cost = parts.partition_of(SourceId(1), "cost");
        assert_eq!(name, title, "name/title share most of their tokens");
        assert_eq!(price, cost, "price/cost values are identical");
        assert_ne!(name, price);
        assert!(!parts.is_schema_agnostic());
    }

    #[test]
    fn blob_is_always_last_and_collects_strays() {
        // Add a source-0-only attribute with unique values.
        let mut coll = product_collection();
        // Rebuild with an extra odd attribute on one profile.
        let mut s0: Vec<Profile> = coll.profiles()[..coll.separator() as usize].to_vec();
        let s1: Vec<Profile> = coll.profiles()[coll.separator() as usize..].to_vec();
        s0[0] = Profile::builder(SourceId(0), "a0")
            .attr("name", "sony bravia tv")
            .attr("price", "100.99")
            .attr("weird", "zzz qqq xxx unique tokens")
            .build();
        coll = ProfileCollection::clean_clean(s0, s1);
        let parts = partition_attributes(&coll, &LshConfig::default());
        let blob = parts.blob_id();
        assert_eq!(parts.partition_of(SourceId(0), "weird"), blob);
        assert!(parts.partitions().last().unwrap().is_blob);
        assert_eq!(parts.partition_of(SourceId(1), "never-seen"), blob);
    }

    #[test]
    fn threshold_one_degenerates_to_schema_agnostic() {
        // Paper, Figure 6(a): "setting the threshold to the maximum value
        // (1) e.g a schema-agnostic token blocking is applied and all the
        // attributes fall in the same blob cluster".
        let config = LshConfig {
            threshold: 1.0,
            ..LshConfig::default()
        };
        let parts = partition_attributes(&product_collection(), &config);
        assert!(parts.is_schema_agnostic());
        assert_eq!(parts.len(), 1);
        let blob = &parts.partitions()[0];
        assert!(blob.is_blob);
        assert_eq!(blob.attributes.len(), 4);
    }

    #[test]
    fn entropies_reflect_value_variability() {
        let parts = partition_attributes(&product_collection(), &LshConfig::default());
        let name_pid = parts.partition_of(SourceId(0), "name");
        let price_pid = parts.partition_of(SourceId(0), "price");
        let name_entropy = parts.entropy_of(name_pid);
        let price_entropy = parts.entropy_of(price_pid);
        assert!(
            name_entropy > price_entropy,
            "names ({name_entropy:.2} bits) vary more than prices ({price_entropy:.2} bits)"
        );
        assert!(parts.max_entropy() >= name_entropy);
    }

    #[test]
    fn manual_partitioning_respects_groups() {
        let coll = product_collection();
        let parts = AttributePartitioning::manual(
            &coll,
            vec![vec![
                (SourceId(0), "name".to_string()),
                (SourceId(1), "title".to_string()),
            ]],
        );
        assert_eq!(
            parts.partition_of(SourceId(0), "name"),
            parts.partition_of(SourceId(1), "title")
        );
        // price/cost were not mentioned → blob.
        assert_eq!(parts.partition_of(SourceId(0), "price"), parts.blob_id());
        assert_eq!(parts.partition_of(SourceId(1), "cost"), parts.blob_id());
        assert!(parts.partitions()[0].entropy > 0.0, "entropies recomputed");
    }

    #[test]
    fn deterministic_across_runs() {
        let coll = product_collection();
        let a = partition_attributes(&coll, &LshConfig::default());
        let b = partition_attributes(&coll, &LshConfig::default());
        assert_eq!(a.len(), b.len());
        for (s, n) in coll.attribute_names() {
            assert_eq!(a.partition_of(s, &n), b.partition_of(s, &n));
        }
    }

    #[test]
    fn dirty_collection_clusters_within_source() {
        // Dirty ER: two attributes of the same source with near-identical
        // token sets may cluster.
        let profiles: Vec<Profile> = (0..10)
            .map(|i| {
                Profile::builder(SourceId(0), i.to_string())
                    .attr("author", format!("person number {i}"))
                    .attr("writer", format!("person number {i}"))
                    .attr("isbn", format!("{}", 9_780_000_000u64 + i))
                    .build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        let parts = partition_attributes(&coll, &LshConfig::default());
        assert_eq!(
            parts.partition_of(SourceId(0), "author"),
            parts.partition_of(SourceId(0), "writer")
        );
        assert_ne!(
            parts.partition_of(SourceId(0), "author"),
            parts.partition_of(SourceId(0), "isbn")
        );
    }
}
