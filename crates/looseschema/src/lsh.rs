//! LSH banding: candidate pairs of similar items from MinHash signatures.

use crate::minhash::MinHasher;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Configuration of the LSH-based attribute partitioning.
#[derive(Debug, Clone)]
pub struct LshConfig {
    /// MinHash signature length.
    pub num_hashes: usize,
    /// Number of LSH bands (`num_hashes` must be divisible by it). More
    /// bands ⇒ more candidates ⇒ higher recall, lower precision. The
    /// default (64 bands × 2 rows) makes pairs at the default similarity
    /// threshold near-certain candidates; false candidates are cheap
    /// because every candidate is verified with exact Jaccard.
    pub bands: usize,
    /// Minimum (exact) Jaccard similarity for two attributes to be
    /// considered similar. This is the "clustering threshold" the paper's
    /// demo lets the user sweep: at `1.0` nothing clusters and blocking
    /// degenerates to schema-agnostic token blocking.
    pub threshold: f64,
    /// Master seed for the MinHash family.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            num_hashes: 128,
            bands: 64,
            threshold: 0.3,
            seed: 42,
        }
    }
}

impl LshConfig {
    /// Rows per band.
    pub fn rows_per_band(&self) -> usize {
        assert!(
            self.bands > 0 && self.num_hashes.is_multiple_of(self.bands),
            "num_hashes ({}) must be divisible by bands ({})",
            self.num_hashes,
            self.bands
        );
        self.num_hashes / self.bands
    }

    /// The similarity at which a pair has a 50 % chance of becoming an LSH
    /// candidate: `(1/b)^(1/r)`. Useful to check a configuration against
    /// the intended threshold.
    pub fn candidate_threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows_per_band() as f64)
    }
}

/// Band the signatures and return the candidate pairs `(i, j)` (`i < j`) of
/// items that collide in at least one band.
///
/// `signatures[k]` is the MinHash signature of item `k`, all produced by
/// the same [`MinHasher`].
pub fn lsh_candidate_pairs(signatures: &[Vec<u64>], config: &LshConfig) -> Vec<(usize, usize)> {
    let rows = config.rows_per_band();
    let mut candidates: HashSet<(usize, usize)> = HashSet::new();
    for band in 0..config.bands {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (item, sig) in signatures.iter().enumerate() {
            assert_eq!(
                sig.len(),
                config.num_hashes,
                "signature {item} has wrong length"
            );
            let slice = &sig[band * rows..(band + 1) * rows];
            let mut h = DefaultHasher::new();
            band.hash(&mut h);
            slice.hash(&mut h);
            buckets.entry(h.finish()).or_default().push(item);
        }
        for items in buckets.values() {
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    let (a, b) = (items[i].min(items[j]), items[i].max(items[j]));
                    candidates.insert((a, b));
                }
            }
        }
    }
    let mut out: Vec<(usize, usize)> = candidates.into_iter().collect();
    out.sort_unstable();
    out
}

/// Convenience: signatures for a list of token sets.
pub(crate) fn signatures_of<T: Hash>(
    sets: &[Vec<T>],
    num_hashes: usize,
    seed: u64,
) -> (MinHasher, Vec<Vec<u64>>) {
    let mh = MinHasher::new(num_hashes, seed);
    let sigs = sets.iter().map(|s| mh.signature(s.iter())).collect();
    (mh, sigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_sets() -> Vec<Vec<String>> {
        let a: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        let a_like: Vec<String> = (0..95).map(|i| format!("t{i}")).collect(); // J ≈ 0.95
        let b: Vec<String> = (0..100).map(|i| format!("u{i}")).collect();
        let b_like: Vec<String> = (5..100).map(|i| format!("u{i}")).collect(); // J ≈ 0.95
        vec![a, a_like, b, b_like]
    }

    #[test]
    fn similar_items_become_candidates() {
        let (_, sigs) = signatures_of(&token_sets(), 128, 7);
        let config = LshConfig::default();
        let cands = lsh_candidate_pairs(&sigs, &config);
        assert!(
            cands.contains(&(0, 1)),
            "highly similar pair missed: {cands:?}"
        );
        assert!(cands.contains(&(2, 3)));
        assert!(!cands.contains(&(0, 2)), "disjoint pair became a candidate");
        assert!(!cands.contains(&(1, 3)));
    }

    #[test]
    fn candidates_deterministic() {
        let (_, sigs) = signatures_of(&token_sets(), 128, 7);
        let config = LshConfig::default();
        assert_eq!(
            lsh_candidate_pairs(&sigs, &config),
            lsh_candidate_pairs(&sigs, &config)
        );
    }

    #[test]
    fn empty_input() {
        let config = LshConfig::default();
        assert!(lsh_candidate_pairs(&[], &config).is_empty());
    }

    #[test]
    fn rows_per_band_and_threshold() {
        let config = LshConfig {
            num_hashes: 128,
            bands: 32,
            threshold: 0.3,
            seed: 0,
        };
        assert_eq!(config.rows_per_band(), 4);
        let t = config.candidate_threshold();
        assert!((0.2..0.6).contains(&t), "default curve midpoint {t}");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_bands_rejected() {
        let config = LshConfig {
            num_hashes: 100,
            bands: 32,
            threshold: 0.3,
            seed: 0,
        };
        config.rows_per_band();
    }

    #[test]
    fn identical_sets_always_candidates() {
        let sets = vec![
            (0..10).map(|i| format!("x{i}")).collect::<Vec<_>>(),
            (0..10).map(|i| format!("x{i}")).collect::<Vec<_>>(),
        ];
        let (_, sigs) = signatures_of(&sets, 64, 1);
        let config = LshConfig {
            num_hashes: 64,
            bands: 16,
            threshold: 0.5,
            seed: 1,
        };
        assert_eq!(lsh_candidate_pairs(&sigs, &config), vec![(0, 1)]);
    }
}
