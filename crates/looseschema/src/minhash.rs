//! MinHash signatures for Jaccard similarity estimation.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A family of `num_hashes` hash functions producing MinHash signatures.
///
/// The expected fraction of agreeing signature positions of two sets equals
/// their Jaccard similarity — the property LSH banding exploits to find
/// similar attributes without comparing all pairs.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Create a hasher family from a master seed. The same
    /// `(num_hashes, seed)` always yields the same signatures.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        assert!(num_hashes > 0, "need at least one hash function");
        let seeds = (0..num_hashes as u64)
            .map(|i| splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15))))
            .collect();
        MinHasher { seeds }
    }

    /// Number of hash functions (signature length).
    pub fn num_hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Signature of a set of items. An empty set gets an all-`u64::MAX`
    /// signature (dissimilar to everything non-empty).
    pub fn signature<T: Hash>(&self, items: impl IntoIterator<Item = T>) -> Vec<u64> {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for item in items {
            let mut h = DefaultHasher::new();
            item.hash(&mut h);
            let base = h.finish();
            for (i, &seed) in self.seeds.iter().enumerate() {
                let v = splitmix64(base ^ seed);
                if v < sig[i] {
                    sig[i] = v;
                }
            }
        }
        sig
    }

    /// Estimate Jaccard similarity from two signatures.
    pub fn estimate_jaccard(&self, a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "signatures must have equal length");
        assert_eq!(
            a.len(),
            self.seeds.len(),
            "signature from a different hasher"
        );
        let matches = a.iter().zip(b).filter(|(x, y)| x == y).count();
        matches as f64 / a.len() as f64
    }
}

/// SplitMix64 mixer (public-domain constant set).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Exact Jaccard similarity of two sorted, deduplicated slices.
pub(crate) fn exact_jaccard<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 1);
        let s = set(&["a", "b", "c"]);
        let sig1 = mh.signature(s.iter());
        let sig2 = mh.signature(s.iter());
        assert_eq!(sig1, sig2);
        assert_eq!(mh.estimate_jaccard(&sig1, &sig2), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(128, 2);
        let a: Vec<String> = (0..50).map(|i| format!("a{i}")).collect();
        let b: Vec<String> = (0..50).map(|i| format!("b{i}")).collect();
        let est = mh.estimate_jaccard(&mh.signature(a.iter()), &mh.signature(b.iter()));
        assert!(est < 0.1, "disjoint sets estimated at {est}");
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        // |A∩B| = 50, |A∪B| = 150 → J = 1/3.
        let mh = MinHasher::new(256, 3);
        let a: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        let b: Vec<String> = (50..150).map(|i| format!("t{i}")).collect();
        let est = mh.estimate_jaccard(&mh.signature(a.iter()), &mh.signature(b.iter()));
        assert!(
            (est - 1.0 / 3.0).abs() < 0.12,
            "estimate {est} too far from 1/3"
        );
    }

    #[test]
    fn empty_set_signature() {
        let mh = MinHasher::new(16, 4);
        let sig = mh.signature(Vec::<String>::new());
        assert!(sig.iter().all(|&v| v == u64::MAX));
        // Dissimilar to a non-empty set with overwhelming probability.
        let other = mh.signature(set(&["x"]).iter());
        assert!(mh.estimate_jaccard(&sig, &other) < 0.01);
    }

    #[test]
    fn different_seeds_different_signatures() {
        let s = set(&["a", "b"]);
        let s1 = MinHasher::new(32, 1).signature(s.iter());
        let s2 = MinHasher::new(32, 2).signature(s.iter());
        assert_ne!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_signature_lengths_rejected() {
        let mh = MinHasher::new(8, 0);
        mh.estimate_jaccard(&[1, 2], &[1, 2, 3]);
    }

    #[test]
    fn exact_jaccard_basics() {
        assert_eq!(exact_jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(exact_jaccard(&[1], &[1]), 1.0);
        assert_eq!(exact_jaccard::<u8>(&[], &[]), 0.0);
        assert_eq!(exact_jaccard(&[1, 2], &[3, 4]), 0.0);
    }
}
