//! Property-based tests: MinHash estimates track exact Jaccard, LSH recall
//! on similar pairs, partitioning invariants.

use proptest::prelude::*;
use sparker_looseschema::{
    loose_schema_keys, partition_attributes, shannon_entropy, AttributePartitioning, LshConfig,
    MinHasher,
};
use sparker_profiles::{Profile, ProfileCollection, SourceId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minhash_estimate_tracks_exact_jaccard(
        a in prop::collection::btree_set(0u32..200, 1..80),
        b in prop::collection::btree_set(0u32..200, 1..80),
        seed in 0u64..1000,
    ) {
        let inter = a.intersection(&b).count();
        let exact = inter as f64 / (a.len() + b.len() - inter) as f64;
        let mh = MinHasher::new(256, seed);
        let est = mh.estimate_jaccard(&mh.signature(a.iter()), &mh.signature(b.iter()));
        // 256 hashes → std ≈ sqrt(J(1-J)/256) ≤ 0.032; allow 6 sigma.
        prop_assert!((est - exact).abs() < 0.2, "exact {exact} vs estimate {est}");
    }

    #[test]
    fn minhash_identical_sets_estimate_one(
        a in prop::collection::btree_set(0u32..100, 1..50),
        seed in 0u64..100,
    ) {
        let mh = MinHasher::new(64, seed);
        let s = mh.signature(a.iter());
        prop_assert_eq!(mh.estimate_jaccard(&s, &s), 1.0);
    }

    #[test]
    fn entropy_bounds(counts in prop::collection::vec(1u64..100, 1..20)) {
        let h = shannon_entropy(counts.clone());
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9, "H {h} > log2(n)");
    }

    #[test]
    fn entropy_maximized_by_uniform(n in 2usize..10, c in 1u64..50) {
        let uniform = shannon_entropy(vec![c; n]);
        let mut skewed = vec![c; n];
        skewed[0] = c * 10;
        prop_assert!(uniform >= shannon_entropy(skewed) - 1e-9);
    }

    #[test]
    fn partitioning_covers_all_attributes(
        names in prop::collection::btree_set("[a-e]{1,3}", 1..5),
        threshold in 0.1f64..1.0,
    ) {
        // Every attribute must land in exactly one partition; partition_of
        // agrees with the partition member lists.
        let profiles: Vec<Profile> = (0..8)
            .map(|i| {
                let mut b = Profile::builder(SourceId(0), i.to_string());
                for n in &names {
                    b = b.attr(n.clone(), format!("val{} common{}", i, i % 3));
                }
                b.build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        let parts = partition_attributes(&coll, &LshConfig { threshold, ..LshConfig::default() });
        let mut seen = 0usize;
        for p in parts.partitions() {
            for (s, n) in &p.attributes {
                prop_assert_eq!(parts.partition_of(*s, n), p.id);
                seen += 1;
            }
        }
        prop_assert_eq!(seen, names.len());
        prop_assert!(parts.partitions().last().unwrap().is_blob);
    }

    #[test]
    fn loose_keys_count_bounded_by_tokens(
        values in prop::collection::vec("[a-z]{1,4}( [a-z]{1,4}){0,3}", 1..4),
    ) {
        let mut b = Profile::builder(SourceId(0), "x");
        for (i, v) in values.iter().enumerate() {
            b = b.attr(format!("a{i}"), v.clone());
        }
        let profile = b.build();
        let coll = ProfileCollection::dirty(vec![profile.clone()]);
        let parts = AttributePartitioning::manual(&coll, vec![]);
        let keys = loose_schema_keys(&coll.profiles()[0], &parts);
        let tokens = coll.profiles()[0].token_set();
        // Blob-only partitioning: exactly one key per distinct token.
        prop_assert_eq!(keys.len(), tokens.len());
        let suffix = format!("_{}", parts.blob_id());
        for k in &keys {
            prop_assert!(k.ends_with(&suffix), "key {} missing blob suffix", k);
        }
    }

    #[test]
    fn manual_groups_respected(group_size in 1usize..4) {
        let attrs: Vec<String> = (0..4).map(|i| format!("attr{i}")).collect();
        let profiles: Vec<Profile> = (0..6)
            .map(|i| {
                let mut b = Profile::builder(SourceId(0), i.to_string());
                for a in &attrs {
                    b = b.attr(a.clone(), format!("v{i}"));
                }
                b.build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        let group: Vec<(SourceId, String)> = attrs
            .iter()
            .take(group_size)
            .map(|a| (SourceId(0), a.clone()))
            .collect();
        let parts = AttributePartitioning::manual(&coll, vec![group.clone()]);
        for (s, n) in &group {
            prop_assert_eq!(parts.partition_of(*s, n).0, 0);
        }
        for a in attrs.iter().skip(group_size) {
            prop_assert_eq!(parts.partition_of(SourceId(0), a), parts.blob_id());
        }
    }
}
