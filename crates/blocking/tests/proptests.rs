//! Property-based tests of blocking invariants: purging and filtering only
//! remove comparisons, candidate pairs are always comparable, dataflow
//! equals sequential, interned blocking equals the string-keyed reference.

use proptest::prelude::*;
use sparker_blocking::{
    block_filtering, purge_by_comparison_level, purge_oversized, token_blocking,
    token_blocking_string,
};
use sparker_dataflow::Context;
use sparker_profiles::{Profile, ProfileCollection, SourceId};

/// Random small collections: values drawn from a small token vocabulary so
/// blocks actually form.
fn collection_strategy(dirty: bool) -> impl Strategy<Value = ProfileCollection> {
    let profile = prop::collection::vec(0usize..12, 1..6).prop_map(|words| {
        words
            .into_iter()
            .map(|w| format!("tok{w}"))
            .collect::<Vec<_>>()
            .join(" ")
    });
    prop::collection::vec(profile, 2..25).prop_map(move |values| {
        let build = |src: u8, vals: &[String], off: usize| {
            vals.iter()
                .enumerate()
                .map(|(i, v)| {
                    Profile::builder(SourceId(src), format!("r{}", off + i))
                        .attr("text", v.clone())
                        .build()
                })
                .collect::<Vec<_>>()
        };
        if dirty {
            ProfileCollection::dirty(build(0, &values, 0))
        } else {
            let mid = values.len() / 2;
            ProfileCollection::clean_clean(
                build(0, &values[..mid], 0),
                build(1, &values[mid..], mid),
            )
        }
    })
}

/// Like [`collection_strategy`] but drawing from a vocabulary that mixes
/// case, digits and non-ASCII words, so tokenization's slow paths are
/// exercised by the interned-vs-string equality test.
fn noisy_collection_strategy(dirty: bool) -> impl Strategy<Value = ProfileCollection> {
    const VOCAB: [&str; 12] = [
        "tok0", "Tok1", "TOK2", "café", "Modène", "ǅungla", "42", "x9y", "MiXeD3", "été",
        "tok0tok0", "ß1",
    ];
    let profile = prop::collection::vec(0usize..VOCAB.len(), 1..6).prop_map(|words| {
        words
            .into_iter()
            .map(|w| VOCAB[w])
            .collect::<Vec<_>>()
            .join(" ")
    });
    prop::collection::vec(profile, 2..25).prop_map(move |values| {
        let build = |src: u8, vals: &[String], off: usize| {
            vals.iter()
                .enumerate()
                .map(|(i, v)| {
                    Profile::builder(SourceId(src), format!("r{}", off + i))
                        .attr("text", v.clone())
                        .build()
                })
                .collect::<Vec<_>>()
        };
        if dirty {
            ProfileCollection::dirty(build(0, &values, 0))
        } else {
            let mid = values.len() / 2;
            ProfileCollection::clean_clean(
                build(0, &values[..mid], 0),
                build(1, &values[mid..], mid),
            )
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole equality guarantee: the interned counting-sort blocker
    /// produces a block collection *identical* to the string-keyed seed
    /// implementation — same keys, same members, same order — on both task
    /// kinds, including mixed-case and non-ASCII vocabularies.
    #[test]
    fn interned_equals_string_keyed_dirty(coll in noisy_collection_strategy(true)) {
        let interned = token_blocking(&coll);
        let reference = token_blocking_string(&coll);
        prop_assert_eq!(interned.kind(), reference.kind());
        prop_assert_eq!(interned.blocks(), reference.blocks());
    }

    #[test]
    fn interned_equals_string_keyed_clean_clean(coll in noisy_collection_strategy(false)) {
        let interned = token_blocking(&coll);
        let reference = token_blocking_string(&coll);
        prop_assert_eq!(interned.kind(), reference.kind());
        prop_assert_eq!(interned.blocks(), reference.blocks());
    }

    #[test]
    fn candidate_pairs_are_comparable(coll in collection_strategy(false)) {
        let blocks = token_blocking(&coll);
        for pair in blocks.candidate_pairs() {
            prop_assert!(coll.is_comparable(pair.first, pair.second));
        }
    }

    #[test]
    fn purging_only_removes_pairs(coll in collection_strategy(true), frac in 0.1f64..1.0) {
        let blocks = token_blocking(&coll);
        let before = blocks.candidate_pairs();
        let after = purge_oversized(blocks, coll.len(), frac).candidate_pairs();
        prop_assert!(after.is_subset(&before));
    }

    #[test]
    fn comparison_purging_only_removes_pairs(coll in collection_strategy(true), s in 1.0f64..2.0) {
        let blocks = token_blocking(&coll);
        let before = blocks.candidate_pairs();
        let after = purge_by_comparison_level(blocks, s).candidate_pairs();
        prop_assert!(after.is_subset(&before));
    }

    #[test]
    fn filtering_only_removes_pairs_and_keeps_some(
        coll in collection_strategy(true),
        ratio in 0.2f64..1.0,
    ) {
        let blocks = token_blocking(&coll);
        let before = blocks.candidate_pairs();
        let filtered = block_filtering(blocks, ratio);
        let after = filtered.candidate_pairs();
        prop_assert!(after.is_subset(&before));
        // Every profile keeps ≥1 block, so nobody is orphaned *by filtering*
        // (pairs can still disappear, but block membership survives).
        if !before.is_empty() && ratio >= 0.99 {
            prop_assert_eq!(&after, &before, "ratio 1.0 is the identity on pairs");
        }
    }

    #[test]
    fn filtering_monotone_in_ratio(coll in collection_strategy(true)) {
        let blocks = token_blocking(&coll);
        let strict = block_filtering(blocks.clone(), 0.4).candidate_pairs();
        let loose = block_filtering(blocks, 0.8).candidate_pairs();
        prop_assert!(strict.len() <= loose.len());
    }

    #[test]
    fn dataflow_blocking_equals_sequential(
        coll in collection_strategy(false),
        workers in 1usize..6,
    ) {
        let ctx = Context::new(workers);
        let seq = token_blocking(&coll);
        let par = sparker_blocking::dataflow::token_blocking(&ctx, &coll);
        prop_assert_eq!(seq.candidate_pairs(), par.candidate_pairs());
        prop_assert_eq!(seq.len(), par.len());
    }

    #[test]
    fn dataflow_filtering_equals_sequential(
        coll in collection_strategy(true),
        ratio in 0.3f64..1.0,
        workers in 1usize..6,
    ) {
        let blocks = token_blocking(&coll);
        let ctx = Context::new(workers);
        let seq = block_filtering(blocks.clone(), ratio);
        let par = sparker_blocking::dataflow::block_filtering(&ctx, blocks, ratio);
        prop_assert_eq!(seq.candidate_pairs(), par.candidate_pairs());
    }

    #[test]
    fn block_sizes_and_comparisons_consistent(coll in collection_strategy(false)) {
        let blocks = token_blocking(&coll);
        let kind = blocks.kind();
        for b in blocks.blocks() {
            prop_assert!(b.is_useful(kind));
            prop_assert_eq!(b.pairs(kind).len() as u64, b.comparisons(kind));
        }
        prop_assert!(blocks.candidate_pairs().len() as u64 <= blocks.total_comparisons());
    }
}
