//! Block Purging: remove the largest, least informative blocks.

use crate::collection::BlockCollection;

/// Block Purging as described in the paper: "discards all the blocks that
/// contain more than half of the profiles in the collection, corresponding
/// to highly frequent blocking keys (e.g. stop-words)".
///
/// `max_fraction` is the retained-size cap as a fraction of
/// `total_profiles`; the paper's setting is `0.5`. Blocks with
/// `size > max_fraction * total_profiles` are dropped.
pub fn purge_oversized(
    mut blocks: BlockCollection,
    total_profiles: usize,
    max_fraction: f64,
) -> BlockCollection {
    assert!(
        max_fraction > 0.0,
        "purging fraction must be positive, got {max_fraction}"
    );
    // A block of two profiles is never a stop-word block, whatever the
    // collection size — without this floor, tiny collections (where half
    // the profiles is < 2) would lose every useful block.
    let cap = ((total_profiles as f64 * max_fraction).floor() as usize).max(2);
    blocks.retain(|b| b.size() <= cap);
    blocks
}

/// Comparison-level Block Purging (Papadakis et al., the meta-blocking
/// paper SparkER builds on): choose the comparison cap automatically from
/// the block-size distribution, then drop every block whose individual
/// comparison count exceeds it.
///
/// The cap is the largest per-block comparison count `c` such that keeping
/// only blocks with `comparisons ≤ c` does not decrease the ratio of
/// retained comparisons to retained block assignments more sharply than the
/// smoothing factor permits: scanning candidate caps in increasing order, it
/// keeps the last cap where the marginal comparisons-per-assignment of the
/// newly admitted blocks stays below `smoothing` × the running average.
/// Intuitively, oversized blocks add many comparisons but few new
/// profile–block assignments, so their marginal ratio explodes.
pub fn purge_by_comparison_level(blocks: BlockCollection, smoothing: f64) -> BlockCollection {
    assert!(
        smoothing >= 1.0,
        "smoothing factor must be ≥ 1, got {smoothing}"
    );
    let kind = blocks.kind();
    if blocks.is_empty() {
        return blocks;
    }

    // Distinct per-block comparison counts, ascending.
    let mut levels: Vec<u64> = blocks
        .blocks()
        .iter()
        .map(|b| b.comparisons(kind))
        .collect();
    levels.sort_unstable();
    levels.dedup();

    // For each level, the cumulative comparisons and assignments of blocks
    // at or below it.
    let mut cum: Vec<(u64, u64, u64)> = Vec::with_capacity(levels.len()); // (level, comparisons, assignments)
    for &level in &levels {
        let mut comparisons = 0u64;
        let mut assignments = 0u64;
        for b in blocks.blocks() {
            if b.comparisons(kind) <= level {
                comparisons += b.comparisons(kind);
                assignments += b.size() as u64;
            }
        }
        cum.push((level, comparisons, assignments));
    }

    // Walk up the levels; stop before the first level whose admitted blocks
    // raise comparisons-per-assignment beyond smoothing × current ratio.
    let mut cap = cum[0].0;
    for w in cum.windows(2) {
        let (_, c_prev, a_prev) = w[0];
        let (level, c_next, a_next) = w[1];
        let prev_ratio = c_prev as f64 / a_prev.max(1) as f64;
        let marginal = (c_next - c_prev) as f64 / (a_next - a_prev).max(1) as f64;
        if marginal > smoothing * prev_ratio.max(1.0) {
            break;
        }
        cap = level;
    }

    let mut blocks = blocks;
    blocks.retain(|b| b.comparisons(kind) <= cap);
    blocks
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::block::Block;
    use proptest::prelude::*;
    use sparker_profiles::{ErKind, ProfileId};

    /// Random dirty collections: `n` profiles, up to 12 blocks of 2..=n
    /// distinct members each.
    fn blocks_strategy() -> impl Strategy<Value = (BlockCollection, usize)> {
        (4usize..40).prop_flat_map(|n| {
            let block = prop::collection::btree_set(0u32..(n as u32), 2..=n)
                .prop_map(|ids| ids.into_iter().map(ProfileId).collect::<Vec<_>>());
            prop::collection::vec(block, 0..12).prop_map(move |members| {
                let blocks = members
                    .into_iter()
                    .enumerate()
                    .map(|(i, ids)| Block::dirty(format!("k{i}"), ids))
                    .collect();
                (BlockCollection::new(ErKind::Dirty, blocks), n)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The paper's rule, verbatim: purging at 0.5 drops *exactly* the
        /// blocks containing more than half of all profiles — no fewer, no
        /// more — and keeps the survivors in order.
        #[test]
        fn drops_exactly_blocks_with_more_than_half((blocks, n) in blocks_strategy()) {
            let cap = ((n as f64 * 0.5).floor() as usize).max(2);
            let expected: Vec<String> = blocks
                .blocks()
                .iter()
                .filter(|b| b.size() <= cap)
                .map(|b| b.key.clone())
                .collect();
            let purged = purge_oversized(blocks, n, 0.5);
            let got: Vec<String> = purged.blocks().iter().map(|b| b.key.clone()).collect();
            prop_assert_eq!(got, expected);
            // Restated directly: no retained block covers more than half.
            prop_assert!(purged.blocks().iter().all(|b| b.size() * 2 <= n));
        }

        /// Boundary: a block holding exactly half of the profiles survives;
        /// one more member and it is purged.
        #[test]
        fn exactly_half_is_retained(half in 2u32..20) {
            let n = (half * 2) as usize;
            let at_cap = Block::dirty("at-cap", (0..half).map(ProfileId).collect());
            let over = Block::dirty("over", (0..=half).map(ProfileId).collect());
            let bc = BlockCollection::new(ErKind::Dirty, vec![at_cap, over]);
            let purged = purge_oversized(bc, n, 0.5);
            let keys: Vec<&str> = purged.blocks().iter().map(|b| b.key.as_str()).collect();
            prop_assert_eq!(keys, vec!["at-cap"]);
        }

        /// Comparison-level purging is a pure filter: it removes whole
        /// blocks, keeps order, and always admits the smallest level.
        #[test]
        fn comparison_level_purging_is_a_filter((blocks, _n) in blocks_strategy()) {
            let kind = blocks.kind();
            let before: Vec<String> = blocks.blocks().iter().map(|b| b.key.clone()).collect();
            let min_level = blocks.blocks().iter().map(|b| b.comparisons(kind)).min();
            let purged = purge_by_comparison_level(blocks, 1.025);
            let after: Vec<String> = purged.blocks().iter().map(|b| b.key.clone()).collect();
            let mut it = before.iter();
            prop_assert!(
                after.iter().all(|k| it.any(|b| b == k)),
                "output must be an ordered subsequence of the input"
            );
            if let Some(min_level) = min_level {
                prop_assert!(
                    purged.blocks().iter().any(|b| b.comparisons(kind) == min_level),
                    "the cheapest blocks always survive"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use sparker_profiles::ErKind;
    use sparker_profiles::ProfileId;

    fn dirty_block(key: &str, ids: std::ops::Range<u32>) -> Block {
        Block::dirty(key, ids.map(ProfileId).collect())
    }

    #[test]
    fn oversized_blocks_dropped() {
        // 10 profiles total; the "the" block holds 6 (> half) and must go.
        let bc = BlockCollection::new(
            ErKind::Dirty,
            vec![
                dirty_block("the", 0..6),
                dirty_block("sony", 0..2),
                dirty_block("bravia", 2..5),
            ],
        );
        let purged = purge_oversized(bc, 10, 0.5);
        let keys: Vec<&str> = purged.blocks().iter().map(|b| b.key.as_str()).collect();
        assert_eq!(keys, vec!["sony", "bravia"]);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly half the profiles is retained (strictly-more is purged).
        let bc = BlockCollection::new(ErKind::Dirty, vec![dirty_block("k", 0..5)]);
        let purged = purge_oversized(bc, 10, 0.5);
        assert_eq!(purged.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_rejected() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        purge_oversized(bc, 10, 0.0);
    }

    #[test]
    fn comparison_level_purging_drops_explosive_blocks() {
        // Many small blocks plus one enormous one: the big block's marginal
        // comparisons-per-assignment is far above the small blocks' ratio.
        let mut blocks: Vec<Block> = (0..20)
            .map(|i| dirty_block(&format!("k{i}"), i * 2..i * 2 + 2))
            .collect();
        blocks.push(dirty_block("stopword", 0..40));
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let purged = purge_by_comparison_level(bc, 1.025);
        assert_eq!(purged.len(), 20);
        assert!(purged.blocks().iter().all(|b| b.key != "stopword"));
    }

    #[test]
    fn comparison_level_purging_keeps_uniform_blocks() {
        let blocks: Vec<Block> = (0..10)
            .map(|i| dirty_block(&format!("k{i}"), i * 3..i * 3 + 3))
            .collect();
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let purged = purge_by_comparison_level(bc, 1.025);
        assert_eq!(purged.len(), 10, "uniform distribution: nothing purged");
    }

    #[test]
    fn comparison_level_purging_empty_input() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        assert!(purge_by_comparison_level(bc, 1.025).is_empty());
    }
}
