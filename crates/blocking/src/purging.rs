//! Block Purging: remove the largest, least informative blocks.

use crate::collection::BlockCollection;

/// Block Purging as described in the paper: "discards all the blocks that
/// contain more than half of the profiles in the collection, corresponding
/// to highly frequent blocking keys (e.g. stop-words)".
///
/// `max_fraction` is the retained-size cap as a fraction of
/// `total_profiles`; the paper's setting is `0.5`. Blocks with
/// `size > max_fraction * total_profiles` are dropped.
pub fn purge_oversized(
    mut blocks: BlockCollection,
    total_profiles: usize,
    max_fraction: f64,
) -> BlockCollection {
    assert!(
        max_fraction > 0.0,
        "purging fraction must be positive, got {max_fraction}"
    );
    // A block of two profiles is never a stop-word block, whatever the
    // collection size — without this floor, tiny collections (where half
    // the profiles is < 2) would lose every useful block.
    let cap = ((total_profiles as f64 * max_fraction).floor() as usize).max(2);
    blocks.retain(|b| b.size() <= cap);
    blocks
}

/// Comparison-level Block Purging (Papadakis et al., the meta-blocking
/// paper SparkER builds on): choose the comparison cap automatically from
/// the block-size distribution, then drop every block whose individual
/// comparison count exceeds it.
///
/// The cap is the largest per-block comparison count `c` such that keeping
/// only blocks with `comparisons ≤ c` does not decrease the ratio of
/// retained comparisons to retained block assignments more sharply than the
/// smoothing factor permits: scanning candidate caps in increasing order, it
/// keeps the last cap where the marginal comparisons-per-assignment of the
/// newly admitted blocks stays below `smoothing` × the running average.
/// Intuitively, oversized blocks add many comparisons but few new
/// profile–block assignments, so their marginal ratio explodes.
pub fn purge_by_comparison_level(blocks: BlockCollection, smoothing: f64) -> BlockCollection {
    assert!(
        smoothing >= 1.0,
        "smoothing factor must be ≥ 1, got {smoothing}"
    );
    let kind = blocks.kind();
    if blocks.is_empty() {
        return blocks;
    }

    // Distinct per-block comparison counts, ascending.
    let mut levels: Vec<u64> = blocks.blocks().iter().map(|b| b.comparisons(kind)).collect();
    levels.sort_unstable();
    levels.dedup();

    // For each level, the cumulative comparisons and assignments of blocks
    // at or below it.
    let mut cum: Vec<(u64, u64, u64)> = Vec::with_capacity(levels.len()); // (level, comparisons, assignments)
    for &level in &levels {
        let mut comparisons = 0u64;
        let mut assignments = 0u64;
        for b in blocks.blocks() {
            if b.comparisons(kind) <= level {
                comparisons += b.comparisons(kind);
                assignments += b.size() as u64;
            }
        }
        cum.push((level, comparisons, assignments));
    }

    // Walk up the levels; stop before the first level whose admitted blocks
    // raise comparisons-per-assignment beyond smoothing × current ratio.
    let mut cap = cum[0].0;
    for w in cum.windows(2) {
        let (_, c_prev, a_prev) = w[0];
        let (level, c_next, a_next) = w[1];
        let prev_ratio = c_prev as f64 / a_prev.max(1) as f64;
        let marginal = (c_next - c_prev) as f64 / (a_next - a_prev).max(1) as f64;
        if marginal > smoothing * prev_ratio.max(1.0) {
            break;
        }
        cap = level;
    }

    let mut blocks = blocks;
    blocks.retain(|b| b.comparisons(kind) <= cap);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use sparker_profiles::ErKind;
    use sparker_profiles::ProfileId;

    fn dirty_block(key: &str, ids: std::ops::Range<u32>) -> Block {
        Block::dirty(key, ids.map(ProfileId).collect())
    }

    #[test]
    fn oversized_blocks_dropped() {
        // 10 profiles total; the "the" block holds 6 (> half) and must go.
        let bc = BlockCollection::new(
            ErKind::Dirty,
            vec![
                dirty_block("the", 0..6),
                dirty_block("sony", 0..2),
                dirty_block("bravia", 2..5),
            ],
        );
        let purged = purge_oversized(bc, 10, 0.5);
        let keys: Vec<&str> = purged.blocks().iter().map(|b| b.key.as_str()).collect();
        assert_eq!(keys, vec!["sony", "bravia"]);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly half the profiles is retained (strictly-more is purged).
        let bc = BlockCollection::new(ErKind::Dirty, vec![dirty_block("k", 0..5)]);
        let purged = purge_oversized(bc, 10, 0.5);
        assert_eq!(purged.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_rejected() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        purge_oversized(bc, 10, 0.0);
    }

    #[test]
    fn comparison_level_purging_drops_explosive_blocks() {
        // Many small blocks plus one enormous one: the big block's marginal
        // comparisons-per-assignment is far above the small blocks' ratio.
        let mut blocks: Vec<Block> = (0..20)
            .map(|i| dirty_block(&format!("k{i}"), i * 2..i * 2 + 2))
            .collect();
        blocks.push(dirty_block("stopword", 0..40));
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let purged = purge_by_comparison_level(bc, 1.025);
        assert_eq!(purged.len(), 20);
        assert!(purged.blocks().iter().all(|b| b.key != "stopword"));
    }

    #[test]
    fn comparison_level_purging_keeps_uniform_blocks() {
        let blocks: Vec<Block> = (0..10)
            .map(|i| dirty_block(&format!("k{i}"), i * 3..i * 3 + 3))
            .collect();
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let purged = purge_by_comparison_level(bc, 1.025);
        assert_eq!(purged.len(), 10, "uniform distribution: nothing purged");
    }

    #[test]
    fn comparison_level_purging_empty_input() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        assert!(purge_by_comparison_level(bc, 1.025).is_empty());
    }
}
