//! A single block: the profiles sharing one blocking key.

use sparker_profiles::{ErKind, Pair, ProfileId};

/// Index of a block inside its [`crate::BlockCollection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The profiles that share one blocking key.
///
/// For clean–clean ER the members are kept per source, because only
/// cross-source comparisons count; for dirty ER all members live in
/// `members[0]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The blocking key (a token, or token ⧺ partition id for loose-schema
    /// blocking).
    pub key: String,
    /// Member profiles per source, each sorted by id.
    pub members: [Vec<ProfileId>; 2],
}

impl Block {
    /// Create a dirty-ER block (all members in one source).
    pub fn dirty(key: impl Into<String>, mut members: Vec<ProfileId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Block {
            key: key.into(),
            members: [members, Vec::new()],
        }
    }

    /// Create a clean–clean block.
    pub fn clean_clean(
        key: impl Into<String>,
        mut source0: Vec<ProfileId>,
        mut source1: Vec<ProfileId>,
    ) -> Self {
        source0.sort_unstable();
        source0.dedup();
        source1.sort_unstable();
        source1.dedup();
        Block {
            key: key.into(),
            members: [source0, source1],
        }
    }

    /// Total number of member profiles.
    pub fn size(&self) -> usize {
        self.members[0].len() + self.members[1].len()
    }

    /// Number of comparisons the block induces under the task kind.
    pub fn comparisons(&self, kind: ErKind) -> u64 {
        match kind {
            ErKind::Dirty => {
                let n = self.members[0].len() as u64;
                n * n.saturating_sub(1) / 2
            }
            ErKind::CleanClean => self.members[0].len() as u64 * self.members[1].len() as u64,
        }
    }

    /// `true` when the block induces at least one comparison.
    pub fn is_useful(&self, kind: ErKind) -> bool {
        self.comparisons(kind) > 0
    }

    /// All member profiles, both sources, in id order.
    pub fn all_members(&self) -> impl Iterator<Item = ProfileId> + '_ {
        self.members[0]
            .iter()
            .chain(self.members[1].iter())
            .copied()
    }

    /// Enumerate the comparisons (normalized pairs) of the block.
    pub fn pairs(&self, kind: ErKind) -> Vec<Pair> {
        match kind {
            ErKind::Dirty => {
                let m = &self.members[0];
                let mut out = Vec::with_capacity(self.comparisons(kind) as usize);
                for i in 0..m.len() {
                    for j in i + 1..m.len() {
                        out.push(Pair::new(m[i], m[j]));
                    }
                }
                out
            }
            ErKind::CleanClean => {
                let mut out = Vec::with_capacity(self.comparisons(kind) as usize);
                for &a in &self.members[0] {
                    for &b in &self.members[1] {
                        out.push(Pair::new(a, b));
                    }
                }
                out
            }
        }
    }

    /// Remove a member profile; returns `true` if it was present.
    pub fn remove(&mut self, id: ProfileId) -> bool {
        for side in &mut self.members {
            if let Ok(pos) = side.binary_search(&id) {
                side.remove(pos);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn dirty_block_comparisons_and_pairs() {
        let b = Block::dirty("tok", vec![pid(3), pid(1), pid(2), pid(1)]);
        assert_eq!(b.size(), 3);
        assert_eq!(b.comparisons(ErKind::Dirty), 3);
        assert_eq!(
            b.pairs(ErKind::Dirty),
            vec![
                Pair::new(pid(1), pid(2)),
                Pair::new(pid(1), pid(3)),
                Pair::new(pid(2), pid(3)),
            ]
        );
    }

    #[test]
    fn clean_clean_block_comparisons_and_pairs() {
        let b = Block::clean_clean("tok", vec![pid(0), pid(1)], vec![pid(5)]);
        assert_eq!(b.size(), 3);
        assert_eq!(b.comparisons(ErKind::CleanClean), 2);
        assert_eq!(
            b.pairs(ErKind::CleanClean),
            vec![Pair::new(pid(0), pid(5)), Pair::new(pid(1), pid(5))]
        );
    }

    #[test]
    fn usefulness() {
        assert!(!Block::dirty("k", vec![pid(1)]).is_useful(ErKind::Dirty));
        assert!(Block::dirty("k", vec![pid(1), pid(2)]).is_useful(ErKind::Dirty));
        // Single-source clean-clean block is useless even with many members.
        let b = Block::clean_clean("k", vec![pid(0), pid(1), pid(2)], vec![]);
        assert!(!b.is_useful(ErKind::CleanClean));
    }

    #[test]
    fn remove_member() {
        let mut b = Block::clean_clean("k", vec![pid(0)], vec![pid(9)]);
        assert!(b.remove(pid(9)));
        assert!(!b.remove(pid(9)));
        assert_eq!(b.size(), 1);
        assert!(!b.is_useful(ErKind::CleanClean));
    }

    #[test]
    fn all_members_crosses_sources() {
        let b = Block::clean_clean("k", vec![pid(2)], vec![pid(7), pid(4)]);
        assert_eq!(
            b.all_members().collect::<Vec<_>>(),
            vec![pid(2), pid(4), pid(7)]
        );
    }
}
