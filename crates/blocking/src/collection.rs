//! Block collections and the profile→blocks inverted index.

use crate::block::{Block, BlockId};
use sparker_profiles::{ErKind, Pair, ProfileId};
use std::collections::HashSet;

/// The output of a blocking step: all blocks plus the task kind needed to
/// interpret them.
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: ErKind,
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Bundle blocks; drops blocks that induce no comparison (the paper's
    /// blocking step only keeps keys shared by ≥ 2 comparable profiles).
    pub fn new(kind: ErKind, blocks: Vec<Block>) -> Self {
        let blocks = blocks.into_iter().filter(|b| b.is_useful(kind)).collect();
        BlockCollection { kind, blocks }
    }

    /// Task kind the blocks were built for.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Number of blocks (blocking keys).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All blocks, id order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block by id.
    pub fn get(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Total comparisons, counting a pair once per co-occurring block
    /// (the blocking literature's *comparison cardinality* ‖B‖).
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(|b| b.comparisons(self.kind)).sum()
    }

    /// Distinct candidate pairs across all blocks.
    pub fn candidate_pairs(&self) -> HashSet<Pair> {
        let mut set = HashSet::new();
        for b in &self.blocks {
            set.extend(b.pairs(self.kind));
        }
        set
    }

    /// Sum of block sizes (the *block cardinality* — total profile→block
    /// assignments).
    pub fn total_assignments(&self) -> u64 {
        self.blocks.iter().map(|b| b.size() as u64).sum()
    }

    /// Build the inverted index profile → blocks containing it.
    pub fn profile_index(&self) -> ProfileBlocksIndex {
        let max_id = self
            .blocks
            .iter()
            .flat_map(|b| b.all_members())
            .map(|p| p.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut index: Vec<Vec<BlockId>> = vec![Vec::new(); max_id];
        for (i, b) in self.blocks.iter().enumerate() {
            for p in b.all_members() {
                index[p.index()].push(BlockId(i as u32));
            }
        }
        ProfileBlocksIndex { index }
    }

    /// Keep only blocks satisfying `pred` (used by the purging steps).
    pub fn retain(&mut self, pred: impl FnMut(&Block) -> bool) {
        self.blocks.retain(pred);
    }

    /// Consume into the raw block list.
    pub fn into_blocks(self) -> Vec<Block> {
        self.blocks
    }
}

/// Inverted index from profile id to the blocks containing it.
///
/// Meta-blocking's edge weighting is defined entirely on this index (the
/// weight of an edge depends on the blocks its two profiles share), and
/// Block Filtering iterates it profile by profile.
#[derive(Debug, Clone)]
pub struct ProfileBlocksIndex {
    index: Vec<Vec<BlockId>>,
}

impl ProfileBlocksIndex {
    /// Blocks containing `id` (empty for unknown/blocked-out profiles).
    pub fn blocks_of(&self, id: ProfileId) -> &[BlockId] {
        self.index.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of profile slots (max profile id + 1).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no profile appears in any block.
    pub fn is_empty(&self) -> bool {
        self.index.iter().all(Vec::is_empty)
    }

    /// Iterate `(profile, blocks)` for profiles that appear in ≥ 1 block.
    pub fn iter(&self) -> impl Iterator<Item = (ProfileId, &[BlockId])> {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (ProfileId(i as u32), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn sample() -> BlockCollection {
        BlockCollection::new(
            ErKind::CleanClean,
            vec![
                Block::clean_clean("blast", vec![pid(0)], vec![pid(2), pid(3)]),
                Block::clean_clean("simonini", vec![pid(0), pid(1)], vec![pid(2)]),
                Block::clean_clean("useless", vec![pid(1)], vec![]),
            ],
        )
    }

    #[test]
    fn useless_blocks_dropped_on_construction() {
        let bc = sample();
        assert_eq!(bc.len(), 2);
        assert!(bc.blocks().iter().all(|b| b.key != "useless"));
    }

    #[test]
    fn comparison_and_assignment_counts() {
        let bc = sample();
        assert_eq!(bc.total_comparisons(), 2 + 2);
        assert_eq!(bc.total_assignments(), 3 + 3);
    }

    #[test]
    fn candidate_pairs_deduplicate_across_blocks() {
        let bc = sample();
        let pairs = bc.candidate_pairs();
        // (0,2) occurs in both blocks but counts once.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&Pair::new(pid(0), pid(2))));
        assert!(pairs.contains(&Pair::new(pid(0), pid(3))));
        assert!(pairs.contains(&Pair::new(pid(1), pid(2))));
    }

    #[test]
    fn profile_index_inverts_blocks() {
        let bc = sample();
        let idx = bc.profile_index();
        assert_eq!(idx.blocks_of(pid(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(idx.blocks_of(pid(3)), &[BlockId(0)]);
        assert_eq!(idx.blocks_of(pid(99)), &[] as &[BlockId]);
        assert!(!idx.is_empty());
        assert_eq!(idx.iter().count(), 4);
    }

    #[test]
    fn retain_filters_blocks() {
        let mut bc = sample();
        bc.retain(|b| b.key == "blast");
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.total_comparisons(), 2);
    }

    #[test]
    fn empty_collection() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        assert!(bc.is_empty());
        assert_eq!(bc.total_comparisons(), 0);
        assert!(bc.candidate_pairs().is_empty());
        assert!(bc.profile_index().is_empty());
    }
}
