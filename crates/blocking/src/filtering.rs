//! Block Filtering: shrink each profile's block list to its most
//! informative blocks.

use crate::block::Block;
use crate::collection::BlockCollection;
use sparker_profiles::ProfileId;

/// Block Filtering (Papadakis et al., used verbatim by the paper): "removes
/// each profile from the largest 20 % blocks in which it appears, increasing
/// the precision without affecting the recall".
///
/// `ratio` is the *retained* fraction — the paper's setting is `0.8` (keep
/// each profile in the smallest 80 % of its blocks, by comparison count).
/// Each profile keeps `max(1, ⌈ratio · d⌉)` blocks, where `d` is the number
/// of blocks it appears in; ties between equally sized blocks are broken by
/// block id, which makes the result deterministic.
pub fn block_filtering(blocks: BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        (0.0..=1.0).contains(&ratio) && ratio > 0.0,
        "filter ratio must be in (0, 1], got {ratio}"
    );
    let kind = blocks.kind();
    let index = blocks.profile_index();

    // Pre-compute block comparison counts once.
    let cardinality: Vec<u64> = blocks
        .blocks()
        .iter()
        .map(|b| b.comparisons(kind))
        .collect();

    // For every profile decide which blocks to stay in.
    let mut keep: Vec<Vec<bool>> = blocks
        .blocks()
        .iter()
        .map(|b| vec![false; b.size()])
        .collect();
    // Map (block, profile) -> member slot, to mark retention cheaply.
    // Blocks store members sorted per source; find the slot via binary search.
    let mark = |keep: &mut Vec<Vec<bool>>, blocks: &BlockCollection, bid: usize, p: ProfileId| {
        let b = blocks.get(crate::block::BlockId(bid as u32));
        let slot = match b.members[0].binary_search(&p) {
            Ok(i) => i,
            Err(_) => {
                let i = b.members[1].binary_search(&p).expect("member of block");
                b.members[0].len() + i
            }
        };
        keep[bid][slot] = true;
    };

    for (profile, block_ids) in index.iter() {
        let mut ordered: Vec<u32> = block_ids.iter().map(|b| b.0).collect();
        ordered.sort_by_key(|&b| (cardinality[b as usize], b));
        let quota = ((block_ids.len() as f64 * ratio).ceil() as usize).max(1);
        for &b in ordered.iter().take(quota) {
            mark(&mut keep, &blocks, b as usize, profile);
        }
    }

    // Rebuild blocks with only the retained members.
    let rebuilt: Vec<Block> = blocks
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let split = b.members[0].len();
            let retain_side = |side: usize, offset: usize| -> Vec<ProfileId> {
                b.members[side]
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| keep[i][offset + j])
                    .map(|(_, &p)| p)
                    .collect()
            };
            Block {
                key: b.key.clone(),
                members: [retain_side(0, 0), retain_side(1, split)],
            }
        })
        .collect();

    BlockCollection::new(kind, rebuilt)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sparker_profiles::ErKind;
    use std::collections::BTreeSet;

    fn blocks_strategy() -> impl Strategy<Value = BlockCollection> {
        let block = prop::collection::btree_set(0u32..30, 2..10)
            .prop_map(|ids| ids.into_iter().map(ProfileId).collect::<Vec<_>>());
        prop::collection::vec(block, 1..15).prop_map(|members| {
            let blocks = members
                .into_iter()
                .enumerate()
                .map(|(i, ids)| Block::dirty(format!("k{i}"), ids))
                .collect();
            BlockCollection::new(ErKind::Dirty, blocks)
        })
    }

    /// Independent model of the paper's rule at ratio 0.8: for each profile,
    /// the retained blocks are exactly its `max(1, ⌈0.8·d⌉)` smallest blocks
    /// (by comparison count, ties by block id) — i.e. it is removed from the
    /// largest ~20 %.
    fn model_retained(blocks: &BlockCollection, ratio: f64) -> Vec<(ProfileId, BTreeSet<String>)> {
        let kind = blocks.kind();
        let index = blocks.profile_index();
        let cardinality: Vec<u64> = blocks
            .blocks()
            .iter()
            .map(|b| b.comparisons(kind))
            .collect();
        let mut out = Vec::new();
        for (p, bids) in index.iter() {
            let mut ordered: Vec<u32> = bids.iter().map(|b| b.0).collect();
            ordered.sort_by_key(|&b| (cardinality[b as usize], b));
            let quota = ((bids.len() as f64 * ratio).ceil() as usize).max(1);
            ordered.truncate(quota);
            let keys = ordered
                .into_iter()
                .map(|b| blocks.blocks()[b as usize].key.clone())
                .collect();
            out.push((p, keys));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The paper's rule: each profile leaves precisely the largest 20 %
        /// of its blocks. Soundness — every surviving membership is one the
        /// model retains; completeness — every model-retained membership
        /// whose block stays useful (≥ 2 members) survives.
        #[test]
        fn each_profile_keeps_its_smallest_80_percent(blocks in blocks_strategy()) {
            let model = model_retained(&blocks, 0.8);
            let filtered = block_filtering(blocks, 0.8);
            // Memberships actually present in the output, by block key.
            let mut got: Vec<(ProfileId, BTreeSet<String>)> = Vec::new();
            for (p, keys) in &model {
                let mine: BTreeSet<String> = filtered
                    .blocks()
                    .iter()
                    .filter(|b| b.all_members().any(|m| m == *p))
                    .map(|b| b.key.clone())
                    .collect();
                prop_assert!(
                    mine.is_subset(keys),
                    "profile {p:?} kept {mine:?}, model allows only {keys:?}"
                );
                got.push((*p, mine));
            }
            // Completeness: a model-retained membership only disappears when
            // its whole block died (fewer than 2 retained members).
            let model_sizes: std::collections::HashMap<&String, usize> = {
                let mut m = std::collections::HashMap::new();
                for (_, keys) in &model {
                    for k in keys {
                        *m.entry(k).or_insert(0) += 1;
                    }
                }
                m
            };
            for ((p, mine), (_, keys)) in got.iter().zip(&model) {
                for k in keys {
                    if model_sizes[k] >= 2 {
                        prop_assert!(
                            mine.contains(k),
                            "profile {p:?} should have stayed in useful block {k}"
                        );
                    }
                }
            }
        }

        /// Filtering never invents candidate pairs.
        #[test]
        fn filtering_only_removes_pairs(blocks in blocks_strategy(), ratio in 0.1f64..=1.0) {
            let before = blocks.candidate_pairs();
            let after = block_filtering(blocks, ratio).candidate_pairs();
            prop_assert!(after.is_subset(&before));
        }

        /// Boundary: with ratio 0.8 a profile appearing in fewer than 5
        /// blocks keeps all of them (⌈0.8·d⌉ = d for d ≤ 4), so filtering is
        /// the identity on such collections.
        #[test]
        fn fewer_than_five_blocks_keeps_all(d in 1usize..5) {
            let blocks: Vec<Block> = (0..d)
                .map(|i| Block::dirty(format!("k{i}"), vec![ProfileId(0), ProfileId(i as u32 + 1)]))
                .collect();
            let filtered = block_filtering(BlockCollection::new(ErKind::Dirty, blocks), 0.8);
            prop_assert_eq!(filtered.len(), d);
            prop_assert!(filtered
                .blocks()
                .iter()
                .all(|b| b.size() == 2 && b.all_members().any(|p| p == ProfileId(0))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{ErKind, Pair};

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn removes_profiles_from_their_largest_blocks() {
        // p0 appears in 5 blocks: one huge, four small. ratio 0.8 keeps it
        // in ceil(5*0.8)=4 blocks → it leaves exactly the huge one.
        let mut blocks = vec![Block::dirty("huge", (0..30).map(ProfileId).collect())];
        for i in 0..4 {
            blocks.push(Block::dirty(format!("small{i}"), vec![pid(0), pid(10 + i)]));
        }
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let filtered = block_filtering(bc, 0.8);
        let huge = filtered.blocks().iter().find(|b| b.key == "huge").unwrap();
        assert!(
            !huge.all_members().any(|p| p == pid(0)),
            "p0 left the huge block"
        );
        for i in 0..4 {
            let b = filtered
                .blocks()
                .iter()
                .find(|b| b.key == format!("small{i}"))
                .unwrap();
            assert!(b.all_members().any(|p| p == pid(0)));
        }
    }

    #[test]
    fn profile_in_one_block_always_stays() {
        let bc = BlockCollection::new(
            ErKind::Dirty,
            vec![Block::dirty("only", vec![pid(0), pid(1)])],
        );
        let filtered = block_filtering(bc, 0.5);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.blocks()[0].size(), 2);
    }

    #[test]
    fn ratio_one_is_identity_on_pairs() {
        let bc = BlockCollection::new(
            ErKind::Dirty,
            vec![
                Block::dirty("a", vec![pid(0), pid(1), pid(2)]),
                Block::dirty("b", vec![pid(1), pid(2)]),
            ],
        );
        let before = bc.candidate_pairs();
        let filtered = block_filtering(bc, 1.0);
        assert_eq!(filtered.candidate_pairs(), before);
    }

    #[test]
    fn clean_clean_sides_preserved() {
        let bc = BlockCollection::new(
            ErKind::CleanClean,
            vec![
                Block::clean_clean(
                    "big",
                    (0..10).map(ProfileId).collect(),
                    (10..20).map(ProfileId).collect(),
                ),
                Block::clean_clean("small", vec![pid(0)], vec![pid(10)]),
            ],
        );
        let filtered = block_filtering(bc, 0.5);
        // Every profile is in ≤2 blocks; quota = max(1, ceil(d*0.5)) = 1,
        // so p0/p10 keep only the small block; others keep "big".
        let small = filtered.blocks().iter().find(|b| b.key == "small").unwrap();
        assert_eq!(small.comparisons(ErKind::CleanClean), 1);
        assert!(small
            .pairs(ErKind::CleanClean)
            .contains(&Pair::new(pid(0), pid(10))));
        let big = filtered.blocks().iter().find(|b| b.key == "big").unwrap();
        assert!(!big.all_members().any(|p| p == pid(0) || p == pid(10)));
    }

    #[test]
    fn filtering_reduces_comparisons_without_killing_all() {
        let blocks: Vec<Block> = (0..8)
            .map(|i| {
                Block::dirty(
                    format!("k{i}"),
                    (0..(4 + i * 3)).map(ProfileId).collect::<Vec<_>>(),
                )
            })
            .collect();
        let bc = BlockCollection::new(ErKind::Dirty, blocks);
        let before = bc.total_comparisons();
        let filtered = block_filtering(bc, 0.6);
        let after = filtered.total_comparisons();
        assert!(after < before, "comparisons shrink: {after} < {before}");
        assert!(after > 0);
    }

    #[test]
    #[should_panic(expected = "filter ratio")]
    fn out_of_range_ratio_rejected() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        block_filtering(bc, 1.5);
    }

    #[test]
    fn empty_collection_ok() {
        let bc = BlockCollection::new(ErKind::Dirty, vec![]);
        assert!(block_filtering(bc, 0.8).is_empty());
    }
}
