//! Dataflow (Spark-style) implementations of the blocking operators.
//!
//! These mirror how SparkER expresses blocking on Spark: profiles are a
//! distributed dataset, token extraction is a `flat_map`, block construction
//! a `group_by_key`. Results are identical to the sequential functions in
//! this crate (asserted by tests), so the pipeline can switch freely — the
//! scalability experiment (DESIGN.md E8) runs these versions.

use crate::block::Block;
use crate::collection::BlockCollection;
use sparker_dataflow::Context;
use sparker_profiles::{ErKind, Profile, ProfileCollection, ProfileId, SourceId};
use std::collections::HashMap;

/// Schema-agnostic Token Blocking on the dataflow engine; equivalent to
/// [`crate::token_blocking`].
pub fn token_blocking(ctx: &Context, collection: &ProfileCollection) -> BlockCollection {
    // Collect raw tokens into a Vec — [`keyed_blocking`] sorts and dedups
    // every profile's keys anyway, so a `BTreeSet` per profile
    // ([`Profile::token_set`]) would pay tree inserts for nothing.
    keyed_blocking(ctx, collection, |p| {
        p.attributes
            .iter()
            .flat_map(|a| sparker_profiles::tokenize(&a.value))
            .collect()
    })
}

/// Keyed blocking on the dataflow engine; equivalent to
/// [`crate::keyed_blocking`].
///
/// Keys are interned into a sorted driver-side table before the shuffle, so
/// the `flat_map`/`group_by_key` exchange moves dense `u32` ids instead of
/// cloned `String`s; key strings are resolved back only once per final
/// block.
pub fn keyed_blocking(
    ctx: &Context,
    collection: &ProfileCollection,
    key_fn: impl Fn(&Profile) -> Vec<String> + Send + Sync,
) -> BlockCollection {
    let kind = collection.kind();
    let profiles = collection.profiles();

    // Key extraction is an engine `map` over the profile indices (the
    // closure borrows the collection), so tokenization runs on the workers
    // and is attributed to the stage's busy time — not a serial driver
    // loop.
    let indices = ctx.parallelize_default((0..profiles.len() as u32).collect());
    let rows: Vec<(ProfileId, SourceId, Vec<String>)> = indices
        .map(|&i| {
            let p = &profiles[i as usize];
            let mut keys = key_fn(p);
            keys.sort_unstable();
            keys.dedup();
            (p.id, p.source, keys)
        })
        .collect();

    // Intern the distinct keys: sorted table, index == dense id, ascending
    // id == lexicographic key order. Distinct-first (hash set, then sort
    // the ~distinct keys) beats sorting every occurrence; the hash map
    // then resolves key → id on the workers — per-key binary search over
    // string compares was the dominant driver-serial cost of this
    // operator.
    let distinct: std::collections::HashSet<&str> = rows
        .iter()
        .flat_map(|(_, _, keys)| keys.iter().map(String::as_str))
        .collect();
    let mut table: Vec<&str> = distinct.into_iter().collect();
    table.sort_unstable();
    let lookup: HashMap<&str, u32> = table
        .iter()
        .enumerate()
        .map(|(i, s)| (*s, i as u32))
        .collect();

    // flatMap: (key id, (source, id)); groupByKey: key id -> members. The
    // spillable operator accounts the shuffle buffers against the context's
    // memory budget (and spills them when it's exceeded) — byte-identical
    // to the plain operator either way.
    let grouped = indices
        .flat_map(|&i| {
            let (id, source, keys) = &rows[i as usize];
            keys.iter()
                .map(|k| (lookup[k.as_str()], (*source, *id)))
                .collect::<Vec<_>>()
        })
        .group_by_key_spillable();

    let mut keyed_blocks: Vec<(u32, Block)> = grouped
        .map(|(key, members)| {
            let mut s0: Vec<ProfileId> = Vec::new();
            let mut s1: Vec<ProfileId> = Vec::new();
            for (source, id) in members {
                if source.0 == 0 {
                    s0.push(*id);
                } else {
                    s1.push(*id);
                }
            }
            let key_str = table[*key as usize].to_string();
            let block = match kind {
                ErKind::Dirty => Block::dirty(key_str, s0),
                ErKind::CleanClean => Block::clean_clean(key_str, s0, s1),
            };
            (*key, block)
        })
        .collect();

    // Shuffle output order depends on the hash partitioner; sort by key id
    // (== key string order) so the result matches the sequential
    // implementation exactly.
    keyed_blocks.sort_by_key(|(key, _)| *key);
    BlockCollection::new(kind, keyed_blocks.into_iter().map(|(_, b)| b).collect())
}

/// Block Filtering on the dataflow engine; equivalent to
/// [`crate::block_filtering`].
///
/// Expressed as SparkER does: explode blocks to `(profile, (block, size))`
/// pairs, group by profile, keep each profile's smallest `ratio` fraction,
/// then regroup by block.
#[allow(clippy::type_complexity)]
pub fn block_filtering(ctx: &Context, blocks: BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        (0.0..=1.0).contains(&ratio) && ratio > 0.0,
        "filter ratio must be in (0, 1], got {ratio}"
    );
    let kind = blocks.kind();
    let rows: Vec<(u32, String, u64, Vec<(u8, ProfileId)>)> = blocks
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut members: Vec<(u8, ProfileId)> =
                b.members[0].iter().map(|&p| (0u8, p)).collect();
            members.extend(b.members[1].iter().map(|&p| (1u8, p)));
            (i as u32, b.key.clone(), b.comparisons(kind), members)
        })
        .collect();
    let keys: Vec<String> = rows.iter().map(|(_, k, _, _)| k.clone()).collect();

    let ds = ctx.parallelize_default(rows);
    // (profile, (block id, block comparisons, source)).
    let by_profile = ds
        .flat_map(|(bid, _, cmps, members)| {
            let bid = *bid;
            let cmps = *cmps;
            members
                .iter()
                .map(|&(src, p)| (p, (bid, cmps, src)))
                .collect::<Vec<_>>()
        })
        .group_by_key_spillable();

    // Per profile: retain the smallest `quota` blocks, emit (block, (src, profile)).
    let retained = by_profile.flat_map(move |(p, blocks_of_p)| {
        let mut ordered = blocks_of_p.clone();
        ordered.sort_by_key(|&(bid, cmps, _)| (cmps, bid));
        let quota = ((ordered.len() as f64 * ratio).ceil() as usize).max(1);
        ordered
            .into_iter()
            .take(quota)
            .map(|(bid, _, src)| (bid, (src, *p)))
            .collect::<Vec<_>>()
    });

    let regrouped = retained.group_by_key_spillable();
    let mut rebuilt: Vec<(u32, Block)> = regrouped
        .map(move |(bid, members)| {
            let mut s0: Vec<ProfileId> = Vec::new();
            let mut s1: Vec<ProfileId> = Vec::new();
            for (src, p) in members {
                if *src == 0 {
                    s0.push(*p);
                } else {
                    s1.push(*p);
                }
            }
            let key = keys[*bid as usize].clone();
            let block = match kind {
                ErKind::Dirty => Block::dirty(key, s0),
                ErKind::CleanClean => Block::clean_clean(key, s0, s1),
            };
            (*bid, block)
        })
        .collect();
    rebuilt.sort_by_key(|(bid, _)| *bid);
    BlockCollection::new(kind, rebuilt.into_iter().map(|(_, b)| b).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::Profile;

    fn collection() -> ProfileCollection {
        let names = [
            "sony bravia tv",
            "samsung galaxy phone",
            "sony walkman player",
            "apple iphone phone",
            "sony bravia television hd",
            "galaxy samsung smartphone",
        ];
        ProfileCollection::dirty(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", *n)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn dataflow_token_blocking_matches_sequential() {
        let coll = collection();
        let ctx = Context::new(4);
        let par = token_blocking(&ctx, &coll);
        let seq = crate::token_blocking(&coll);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.blocks().iter().zip(seq.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dataflow_blocking_clean_clean() {
        let coll = ProfileCollection::clean_clean(
            vec![Profile::builder(SourceId(0), "a")
                .attr("n", "x common")
                .build()],
            vec![Profile::builder(SourceId(1), "b")
                .attr("m", "common y")
                .build()],
        );
        let ctx = Context::new(2);
        let bc = token_blocking(&ctx, &coll);
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.blocks()[0].key, "common");
        assert_eq!(bc.blocks()[0].members[0].len(), 1);
        assert_eq!(bc.blocks()[0].members[1].len(), 1);
    }

    #[test]
    fn dataflow_filtering_matches_sequential() {
        let coll = collection();
        let ctx = Context::new(4);
        let blocks = crate::token_blocking(&coll);
        let par = block_filtering(&ctx, blocks.clone(), 0.8);
        let seq = crate::block_filtering(blocks, 0.8);
        assert_eq!(par.candidate_pairs(), seq.candidate_pairs());
        assert_eq!(par.total_comparisons(), seq.total_comparisons());
    }

    #[test]
    fn worker_count_does_not_change_result() {
        let coll = collection();
        let base = token_blocking(&Context::new(1), &coll);
        for w in [2, 4, 8] {
            let bc = token_blocking(&Context::new(w), &coll);
            assert_eq!(bc.candidate_pairs(), base.candidate_pairs());
        }
    }

    #[test]
    fn budgeted_blocking_spills_and_matches_sequential() {
        use sparker_dataflow::MemBudget;
        let coll = collection();
        // A budget of a few bytes: every shuffle partition must spill.
        let budget = MemBudget::limited(16);
        let ctx = Context::new(4).with_budget(budget.clone());
        let blocks = token_blocking(&ctx, &coll);
        let filtered = block_filtering(&ctx, blocks.clone(), 0.8);
        assert!(budget.spill_batches() > 0, "tiny budget forces spilling");
        let seq_blocks = crate::token_blocking(&coll);
        assert_eq!(blocks.blocks(), seq_blocks.blocks());
        let seq_filtered = crate::block_filtering(seq_blocks, 0.8);
        assert_eq!(filtered.candidate_pairs(), seq_filtered.candidate_pairs());
    }

    #[test]
    fn engine_metrics_show_shuffles() {
        let coll = collection();
        let ctx = Context::new(2);
        token_blocking(&ctx, &coll);
        let snap = ctx.metrics();
        assert!(snap.stages.iter().any(|s| s.name == "group_by_key"));
        assert!(snap.total_shuffle_records() > 0);
    }
}
