//! # sparker-blocking
//!
//! The first half of SparkER's blocker: schema-agnostic Token Blocking plus
//! the block-collection cleaning steps (Block Purging and Block Filtering)
//! that the paper applies before meta-blocking.
//!
//! * [`token_blocking`] — every token appearing anywhere in a profile is a
//!   blocking key (Figure 1(b) of the paper). Runs on the interned fast
//!   path: tokens are mapped to dense `TokenId`s once and blocks are built
//!   by counting sort into a CSR-packed [`CompactBlocks`]
//!   ([`token_blocking_interned`] exposes that form directly;
//!   [`token_blocking_string`] is the original map-based reference).
//! * [`keyed_blocking`] — the generalization used by Blast's loose-schema
//!   blocking, where the caller derives the keys (token ⧺ attribute-partition
//!   id, Figure 2(b)).
//! * [`purge_oversized`] — Block Purging: drop blocks containing more than
//!   half of all profiles (stop-word-like keys).
//! * [`block_filtering`] — Block Filtering: remove each profile from the
//!   largest 20 % of the blocks it appears in.
//! * [`dataflow`] — the same operators expressed on the
//!   [`sparker_dataflow`] engine, mirroring SparkER's Spark implementation.
//!
//! ```
//! use sparker_profiles::{Profile, ProfileCollection, SourceId};
//! use sparker_blocking::token_blocking;
//!
//! let coll = ProfileCollection::clean_clean(
//!     vec![Profile::builder(SourceId(0), "1").attr("title", "Blast meta-blocking").build()],
//!     vec![Profile::builder(SourceId(1), "2").attr("name", "BLAST").build()],
//! );
//! let blocks = token_blocking(&coll);
//! assert_eq!(blocks.len(), 1); // only "blast" co-occurs
//! assert_eq!(blocks.total_comparisons(), 1);
//! ```

mod block;
mod collection;
mod csr;
pub mod dataflow;
mod filtering;
mod methods;
mod purging;
mod tokenblocking;

pub use block::{Block, BlockId};
pub use collection::{BlockCollection, ProfileBlocksIndex};
pub use csr::{CompactBlocks, ProfileKeys};
pub use filtering::block_filtering;
pub use methods::{
    canopy_blocking, ngram_blocking, rarest_token_key, sorted_neighborhood, sorted_neighborhood_by,
};
pub use purging::{purge_by_comparison_level, purge_oversized};
pub use tokenblocking::{
    keyed_blocking, keyed_blocking_string, token_blocking, token_blocking_interned,
    token_blocking_streaming, token_blocking_string, token_blocking_with_dict,
    token_blocking_with_dict_budgeted,
};
