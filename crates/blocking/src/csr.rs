//! CSR-packed block collections over interned token ids.
//!
//! The paper's "compact block index, broadcast to every partition" is a flat
//! structure, not a map of strings to vectors. [`CompactBlocks`] is that
//! structure: one contiguous `members` array plus an offsets array (CSR —
//! compressed sparse row), keyed by dense [`TokenId`]s instead of `String`s.
//! It is built by counting sort — two passes over per-profile key-id lists,
//! zero hashing, zero per-block allocation — and is what
//! `sparker-metablocking`'s `BlockGraph` is built from without re-copying
//! per-block vectors.
//!
//! Block keys stay recoverable: [`CompactBlocks::materialize`] resolves ids
//! back to strings through the [`TokenDict`] and yields a classic
//! [`BlockCollection`] for display, debugging and the string-keyed APIs.

use crate::block::Block;
use crate::collection::BlockCollection;
use sparker_profiles::{ErKind, ProfileId, TokenDict, TokenId};

/// Per-profile key-id lists in CSR form: the keys of profile `p` are
/// `ids[offsets[p]..offsets[p + 1]]`, each list sorted and deduplicated.
/// The intermediate between tokenization and block construction.
#[derive(Debug, Clone)]
pub struct ProfileKeys {
    ids: Vec<u32>,
    offsets: Vec<u32>,
}

impl ProfileKeys {
    /// Collect per-profile key lists. `fill` appends the (unsorted,
    /// possibly duplicated) key ids of one profile into the buffer; the
    /// builder sorts and deduplicates each list.
    pub fn collect<P>(profiles: &[P], mut fill: impl FnMut(&P, &mut Vec<u32>)) -> Self {
        let mut keys = ProfileKeys::new();
        let mut buf: Vec<u32> = Vec::new();
        for p in profiles {
            fill(p, &mut buf);
            keys.push_keys(&mut buf);
        }
        keys
    }

    /// An empty key table to grow incrementally with
    /// [`ProfileKeys::push_keys`] — the streaming entry point used when
    /// profiles arrive in chunks instead of as one slice.
    pub fn new() -> Self {
        ProfileKeys {
            ids: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Append the next profile's key list. `buf` holds its (unsorted,
    /// possibly duplicated) key ids; the list is sorted, deduplicated and
    /// adopted, and `buf` is left cleared for reuse.
    pub fn push_keys(&mut self, buf: &mut Vec<u32>) {
        buf.sort_unstable();
        buf.dedup();
        self.ids.extend_from_slice(buf);
        self.offsets.push(self.ids.len() as u32);
        buf.clear();
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when no profiles were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key ids of profile `p`, deduplicated (sorted unless the lists were
    /// [`ProfileKeys::remap`]ped afterwards).
    pub fn keys_of(&self, p: usize) -> &[u32] {
        &self.ids[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// Remap every key id through `perm` (`id ← perm[id]`) — how the
    /// provisional insertion-order ids a `DictBuilder` hands out during the
    /// single tokenization pass become final lexicographic `TokenId`s.
    /// `perm` must be a bijection over the id space, so per-list dedup is
    /// preserved; per-list *order* is not, which the counting-sort
    /// construction in [`CompactBlocks::from_profile_keys`] never relies on.
    pub fn remap(&mut self, perm: &[u32]) {
        for id in &mut self.ids {
            *id = perm[*id as usize];
        }
    }
}

impl Default for ProfileKeys {
    fn default() -> Self {
        Self::new()
    }
}

/// A block collection packed in CSR form: `members` holds every block's
/// profiles back to back, `offsets[b]..offsets[b + 1]` delimits block `b`,
/// and `splits[b]` is the length of its source-0 prefix. Keys are dense
/// [`TokenId`]s; blocks are ordered by key id (= lexicographic key order).
///
/// Every block induces at least one comparison (useless blocks are dropped
/// during construction, as in [`BlockCollection::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactBlocks {
    kind: ErKind,
    keys: Vec<TokenId>,
    offsets: Vec<u32>,
    splits: Vec<u32>,
    members: Vec<ProfileId>,
    num_profiles: usize,
}

impl CompactBlocks {
    /// Build by counting sort from per-profile key lists.
    ///
    /// `num_keys` bounds the dense key space (`0..num_keys`); `separator`
    /// is the first profile id of source 1 (`== len` for dirty tasks), as
    /// in `ProfileCollection::separator`. Pass 1 counts bucket sizes, pass
    /// 2 scatters profile ids; because profiles are scanned in increasing
    /// id order each bucket comes out sorted with its source-0 members
    /// first, so no per-block sort is needed. Useless blocks (inducing no
    /// comparison) are dropped while compacting.
    pub fn from_profile_keys(
        kind: ErKind,
        separator: u32,
        num_keys: usize,
        profile_keys: &ProfileKeys,
    ) -> Self {
        // Pass 1: bucket sizes (total and source-0 prefix).
        let mut counts = vec![0u32; num_keys];
        let mut counts0 = vec![0u32; num_keys];
        let n = profile_keys.len();
        for p in 0..n {
            let in_source0 = (p as u32) < separator;
            for &k in profile_keys.keys_of(p) {
                counts[k as usize] += 1;
                counts0[k as usize] += u32::from(in_source0);
            }
        }
        let mut all_offsets = Vec::with_capacity(num_keys + 1);
        all_offsets.push(0u32);
        for &c in &counts {
            all_offsets.push(all_offsets.last().unwrap() + c);
        }

        // Pass 2: scatter profile ids; ascending p keeps buckets sorted.
        let total = *all_offsets.last().unwrap() as usize;
        let mut all_members = vec![ProfileId(0); total];
        let mut cursor: Vec<u32> = all_offsets[..num_keys].to_vec();
        for p in 0..n {
            let pid = ProfileId(p as u32);
            for &k in profile_keys.keys_of(p) {
                all_members[cursor[k as usize] as usize] = pid;
                cursor[k as usize] += 1;
            }
        }

        // Compact: keep only blocks that induce a comparison, in key order.
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut splits = Vec::new();
        let mut members = Vec::new();
        let mut num_profiles = 0usize;
        for k in 0..num_keys {
            let (lo, hi) = (all_offsets[k] as usize, all_offsets[k + 1] as usize);
            let size = hi - lo;
            let s0 = counts0[k] as usize;
            let useful = match kind {
                ErKind::Dirty => size >= 2,
                ErKind::CleanClean => s0 > 0 && s0 < size,
            };
            if !useful {
                continue;
            }
            keys.push(TokenId(k as u32));
            members.extend_from_slice(&all_members[lo..hi]);
            offsets.push(members.len() as u32);
            // Dirty blocks keep everything on the source-0 side, mirroring
            // `Block::dirty`.
            splits.push(match kind {
                ErKind::Dirty => size as u32,
                ErKind::CleanClean => s0 as u32,
            });
            if let Some(m) = all_members[lo..hi].iter().map(|p| p.index()).max() {
                num_profiles = num_profiles.max(m + 1);
            }
        }
        CompactBlocks {
            kind,
            keys,
            offsets,
            splits,
            members,
            num_profiles,
        }
    }

    /// [`CompactBlocks::from_profile_keys`] with the counting sort run over
    /// fixed-size ascending [`TokenId`] ranges of `chunk_keys` keys each.
    ///
    /// Every chunk re-scans the per-profile key lists but only counts and
    /// scatters the keys inside its range, so the scatter temporaries
    /// (counts, cursors, unpruned member buckets) are bounded by the chunk
    /// instead of the whole key space — the memory-dominant part of token
    /// blocking at the million-profile scale. Chunks append to the output
    /// arrays in ascending key order, exactly the order the monolithic
    /// build compacts in, so the result is bit-identical to
    /// [`CompactBlocks::from_profile_keys`] for every chunk size (pinned by
    /// proptest).
    pub fn from_profile_keys_chunked(
        kind: ErKind,
        separator: u32,
        num_keys: usize,
        profile_keys: &ProfileKeys,
        chunk_keys: usize,
    ) -> Self {
        let chunk_keys = chunk_keys.max(1);
        let n = profile_keys.len();
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut splits = Vec::new();
        let mut members: Vec<ProfileId> = Vec::new();
        let mut num_profiles = 0usize;
        let mut k0 = 0usize;
        while k0 < num_keys {
            let k1 = (k0 + chunk_keys).min(num_keys);
            let width = k1 - k0;
            // Pass 1 over this key range: bucket sizes.
            let mut counts = vec![0u32; width];
            let mut counts0 = vec![0u32; width];
            for p in 0..n {
                let in_source0 = (p as u32) < separator;
                for &k in profile_keys.keys_of(p) {
                    let k = k as usize;
                    if (k0..k1).contains(&k) {
                        counts[k - k0] += 1;
                        counts0[k - k0] += u32::from(in_source0);
                    }
                }
            }
            let mut range_offsets = Vec::with_capacity(width + 1);
            range_offsets.push(0u32);
            for &c in &counts {
                range_offsets.push(range_offsets.last().unwrap() + c);
            }
            // Pass 2: scatter this range's profile ids.
            let total = *range_offsets.last().unwrap() as usize;
            let mut range_members = vec![ProfileId(0); total];
            let mut cursor: Vec<u32> = range_offsets[..width].to_vec();
            for p in 0..n {
                let pid = ProfileId(p as u32);
                for &k in profile_keys.keys_of(p) {
                    let k = k as usize;
                    if (k0..k1).contains(&k) {
                        range_members[cursor[k - k0] as usize] = pid;
                        cursor[k - k0] += 1;
                    }
                }
            }
            // Compact this range, appending in ascending key order.
            for k in 0..width {
                let (lo, hi) = (range_offsets[k] as usize, range_offsets[k + 1] as usize);
                let size = hi - lo;
                let s0 = counts0[k] as usize;
                let useful = match kind {
                    ErKind::Dirty => size >= 2,
                    ErKind::CleanClean => s0 > 0 && s0 < size,
                };
                if !useful {
                    continue;
                }
                keys.push(TokenId((k0 + k) as u32));
                members.extend_from_slice(&range_members[lo..hi]);
                offsets.push(members.len() as u32);
                splits.push(match kind {
                    ErKind::Dirty => size as u32,
                    ErKind::CleanClean => s0 as u32,
                });
                if let Some(m) = range_members[lo..hi].iter().map(|p| p.index()).max() {
                    num_profiles = num_profiles.max(m + 1);
                }
            }
            k0 = k1;
        }
        CompactBlocks {
            kind,
            keys,
            offsets,
            splits,
            members,
            num_profiles,
        }
    }

    /// Budget-driven build: monolithic when `budget` is unlimited, chunked
    /// with a budget-derived key-range size otherwise. The per-key scatter
    /// temporaries cost roughly 12 bytes plus the range's share of the
    /// member scatter; 32 bytes per key is a conservative sizing estimate.
    pub fn from_profile_keys_budgeted(
        kind: ErKind,
        separator: u32,
        num_keys: usize,
        profile_keys: &ProfileKeys,
        budget: &sparker_dataflow::MemBudget,
    ) -> Self {
        if !budget.is_limited() {
            return Self::from_profile_keys(kind, separator, num_keys, profile_keys);
        }
        let chunk = budget.chunk_len(num_keys, 32);
        Self::from_profile_keys_chunked(kind, separator, num_keys, profile_keys, chunk)
    }

    /// Task kind the blocks were built for.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Highest member profile id + 1 (the dense profile-slot count).
    pub fn num_profiles(&self) -> usize {
        self.num_profiles
    }

    /// Keys in block order (ascending ids).
    pub fn keys(&self) -> &[TokenId] {
        &self.keys
    }

    /// Key of block `b`.
    pub fn key(&self, b: usize) -> TokenId {
        self.keys[b]
    }

    /// Members of block `b`: source-0 prefix then source-1, each sorted.
    pub fn members(&self, b: usize) -> &[ProfileId] {
        &self.members[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// Length of the source-0 prefix of block `b`.
    pub fn split(&self, b: usize) -> usize {
        self.splits[b] as usize
    }

    /// The raw CSR arrays `(offsets, splits, members)` — what `BlockGraph`
    /// adopts wholesale instead of re-copying per-block vectors.
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[ProfileId]) {
        (&self.offsets, &self.splits, &self.members)
    }

    /// Number of comparisons block `b` induces.
    pub fn comparisons(&self, b: usize) -> u64 {
        let size = (self.offsets[b + 1] - self.offsets[b]) as u64;
        let s0 = self.splits[b] as u64;
        match self.kind {
            ErKind::Dirty => size * size.saturating_sub(1) / 2,
            ErKind::CleanClean => s0 * (size - s0),
        }
    }

    /// Total comparisons over all blocks (comparison cardinality ‖B‖).
    pub fn total_comparisons(&self) -> u64 {
        (0..self.len()).map(|b| self.comparisons(b)).sum()
    }

    /// Sum of block sizes (total profile→block assignments).
    pub fn total_assignments(&self) -> u64 {
        self.members.len() as u64
    }

    /// Resolve keys through `dict` and materialize a classic
    /// [`BlockCollection`]. Blocks come out in the same order (ascending
    /// id = lexicographic key) with identical members.
    pub fn materialize(&self, dict: &TokenDict) -> BlockCollection {
        self.materialize_with(|id| dict.resolve(id).to_string())
    }

    /// [`CompactBlocks::materialize`] with a custom key resolver (used by
    /// keyed blocking, whose dense ids index an ad-hoc key dictionary).
    pub fn materialize_with(&self, resolve: impl Fn(TokenId) -> String) -> BlockCollection {
        let blocks: Vec<Block> = (0..self.len())
            .map(|b| {
                let m = self.members(b);
                let split = self.split(b);
                let key = resolve(self.key(b));
                match self.kind {
                    ErKind::Dirty => Block::dirty(key, m.to_vec()),
                    ErKind::CleanClean => {
                        Block::clean_clean(key, m[..split].to_vec(), m[split..].to_vec())
                    }
                }
            })
            .collect();
        BlockCollection::new(self.kind, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    /// 3 profiles, 4 keys: key 0 {0,1}, key 1 {0}, key 2 {1,2}, key 3 {}.
    fn sample_keys() -> ProfileKeys {
        let per_profile: Vec<Vec<u32>> = vec![vec![1, 0], vec![2, 0, 2], vec![2]];
        ProfileKeys::collect(&per_profile, |keys, buf| buf.extend_from_slice(keys))
    }

    #[test]
    fn profile_keys_sorted_deduped() {
        let pk = sample_keys();
        assert_eq!(pk.len(), 3);
        assert_eq!(pk.keys_of(0), &[0, 1]);
        assert_eq!(pk.keys_of(1), &[0, 2]);
        assert_eq!(pk.keys_of(2), &[2]);
    }

    #[test]
    fn dirty_counting_sort_blocks() {
        let pk = sample_keys();
        let cb = CompactBlocks::from_profile_keys(ErKind::Dirty, 3, 4, &pk);
        // Key 1 is a singleton, key 3 empty — both dropped.
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.keys(), &[TokenId(0), TokenId(2)]);
        assert_eq!(cb.members(0), &[pid(0), pid(1)]);
        assert_eq!(cb.members(1), &[pid(1), pid(2)]);
        assert_eq!(cb.split(0), 2, "dirty keeps all members on side 0");
        assert_eq!(cb.comparisons(0), 1);
        assert_eq!(cb.total_comparisons(), 2);
        assert_eq!(cb.total_assignments(), 4);
        assert_eq!(cb.num_profiles(), 3);
    }

    #[test]
    fn clean_clean_split_and_usefulness() {
        // Separator 1: profile 0 is source 0, profiles 1..3 source 1.
        let pk = sample_keys();
        let cb = CompactBlocks::from_profile_keys(ErKind::CleanClean, 1, 4, &pk);
        // Key 0 spans sources {0 | 1}; key 2 is single-source {1, 2} → dropped.
        assert_eq!(cb.len(), 1);
        assert_eq!(cb.key(0), TokenId(0));
        assert_eq!(cb.members(0), &[pid(0), pid(1)]);
        assert_eq!(cb.split(0), 1);
        assert_eq!(cb.comparisons(0), 1);
    }

    #[test]
    fn materialize_resolves_keys() {
        let pk = sample_keys();
        let cb = CompactBlocks::from_profile_keys(ErKind::Dirty, 3, 4, &pk);
        let names = ["alpha", "beta", "gamma", "delta"];
        let bc = cb.materialize_with(|id| names[id.index()].to_string());
        assert_eq!(bc.len(), 2);
        assert_eq!(bc.blocks()[0].key, "alpha");
        assert_eq!(bc.blocks()[1].key, "gamma");
        assert_eq!(bc.blocks()[0].members[0], vec![pid(0), pid(1)]);
    }

    #[test]
    fn empty_inputs() {
        let pk = ProfileKeys::collect(&Vec::<Vec<u32>>::new(), |_, _| {});
        assert!(pk.is_empty());
        let cb = CompactBlocks::from_profile_keys(ErKind::Dirty, 0, 0, &pk);
        assert!(cb.is_empty());
        assert_eq!(cb.total_comparisons(), 0);
        assert_eq!(cb.num_profiles(), 0);
    }

    #[test]
    fn chunked_build_is_bit_identical_to_monolithic() {
        let pk = sample_keys();
        for kind_sep in [(ErKind::Dirty, 3u32), (ErKind::CleanClean, 1u32)] {
            let (kind, sep) = kind_sep;
            let mono = CompactBlocks::from_profile_keys(kind, sep, 4, &pk);
            for chunk in [1, 2, 3, 4, 100] {
                let chunked = CompactBlocks::from_profile_keys_chunked(kind, sep, 4, &pk, chunk);
                assert_eq!(chunked, mono, "chunk={chunk} kind={kind:?}");
            }
        }
    }

    #[test]
    fn budgeted_build_matches_monolithic() {
        use sparker_dataflow::MemBudget;
        let pk = sample_keys();
        let mono = CompactBlocks::from_profile_keys(ErKind::Dirty, 3, 4, &pk);
        for budget in [MemBudget::unlimited(), MemBudget::limited(1)] {
            let b = CompactBlocks::from_profile_keys_budgeted(ErKind::Dirty, 3, 4, &pk, &budget);
            assert_eq!(b, mono);
        }
    }

    mod chunked_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_chunked_equals_monolithic(
                per_profile in proptest::collection::vec(
                    proptest::collection::vec(0u32..30, 0..8), 0..40),
                chunk in 1usize..35,
                separator_frac in 0u32..100,
            ) {
                let pk = ProfileKeys::collect(&per_profile, |keys, buf| {
                    buf.extend_from_slice(keys)
                });
                let n = per_profile.len() as u32;
                let separator = if n == 0 { 0 } else { separator_frac % (n + 1) };
                for kind in [ErKind::Dirty, ErKind::CleanClean] {
                    let sep = match kind {
                        ErKind::Dirty => n,
                        ErKind::CleanClean => separator,
                    };
                    let mono = CompactBlocks::from_profile_keys(kind, sep, 30, &pk);
                    let chunked =
                        CompactBlocks::from_profile_keys_chunked(kind, sep, 30, &pk, chunk);
                    prop_assert_eq!(chunked, mono);
                }
            }
        }
    }
}
