//! Schema-agnostic Token Blocking and its keyed generalization.
//!
//! Both now run on the interned fast path: keys are mapped to dense ids
//! (tokens through the collection-wide [`TokenDict`], ad-hoc keys through a
//! sorted key table), blocks are built by counting sort into a CSR
//! [`CompactBlocks`], and strings only reappear when the result is
//! materialized. The original `HashMap<String, …>` implementation is kept
//! as [`token_blocking_string`] — it is the reference the property tests
//! compare against and the baseline the benchmarks measure the interned
//! path against.

use crate::block::Block;
use crate::collection::BlockCollection;
use crate::csr::{CompactBlocks, ProfileKeys};
use sparker_dataflow::MemBudget;
use sparker_profiles::{
    each_token, DictBuilder, ErKind, Profile, ProfileCollection, ProfileId, TokenDict,
};
use std::collections::HashMap;

/// Schema-agnostic Token Blocking (Figure 1(b) of the paper): each distinct
/// token appearing in any attribute value of a profile becomes a blocking
/// key; a block holds every profile containing that token.
///
/// Blocks inducing no comparison (singletons; single-source blocks in
/// clean–clean tasks) are dropped. Block order is deterministic: keys are
/// sorted. Internally this interns tokens and buckets ids in **one pass**
/// over the collection — see [`token_blocking_with_dict`] for the entry
/// point that also returns the dictionary, and [`token_blocking_interned`]
/// to reuse a dictionary that already exists.
pub fn token_blocking(collection: &ProfileCollection) -> BlockCollection {
    let (dict, compact) = token_blocking_with_dict(collection);
    compact.materialize(&dict)
}

/// Single-pass interned Token Blocking: tokenizes the collection exactly
/// once, interning tokens to provisional ids *while* collecting each
/// profile's key list (one hash probe per occurrence), then remaps the
/// recorded ids to final lexicographic [`sparker_profiles::TokenId`]s through the
/// permutation [`DictBuilder::finish`] returns and counting-sorts them
/// into the CSR [`CompactBlocks`]. No second tokenization pass, no
/// per-occurrence binary search, no strings hashed twice.
///
/// Returns the dictionary alongside the blocks so downstream stages
/// (meta-blocking, TF-IDF, materialization) share the same id space.
pub fn token_blocking_with_dict(collection: &ProfileCollection) -> (TokenDict, CompactBlocks) {
    let mut builder = DictBuilder::new();
    let mut scratch = String::new();
    let mut keys = ProfileKeys::collect(collection.profiles(), |p, buf| {
        for a in &p.attributes {
            each_token(&a.value, &mut scratch, |t| buf.push(builder.intern(t)));
        }
    });
    let (dict, perm) = builder.finish();
    keys.remap(&perm);
    let compact = CompactBlocks::from_profile_keys(
        collection.kind(),
        collection.separator(),
        dict.len(),
        &keys,
    );
    (dict, compact)
}

/// [`token_blocking_with_dict`] under a memory budget: the same
/// single-pass interning, but the CSR counting sort runs over bounded
/// [`sparker_profiles::TokenId`] chunks
/// ([`CompactBlocks::from_profile_keys_budgeted`]). Bit-identical output.
pub fn token_blocking_with_dict_budgeted(
    collection: &ProfileCollection,
    budget: &MemBudget,
) -> (TokenDict, CompactBlocks) {
    let mut builder = DictBuilder::new();
    let mut scratch = String::new();
    let mut keys = ProfileKeys::collect(collection.profiles(), |p, buf| {
        for a in &p.attributes {
            each_token(&a.value, &mut scratch, |t| buf.push(builder.intern(t)));
        }
    });
    let (dict, perm) = builder.finish();
    keys.remap(&perm);
    let compact = CompactBlocks::from_profile_keys_budgeted(
        collection.kind(),
        collection.separator(),
        dict.len(),
        &keys,
        budget,
    );
    (dict, compact)
}

/// Streaming Token Blocking: profiles arrive as owned chunks (in ascending
/// id order, source 0 before source 1) and each chunk's raw strings are
/// dropped as soon as its tokens are interned — the collection's `Profile`s
/// and their interned views never coexist in RAM. This is the 1M-profile
/// entry point: a generator emits chunks, the dictionary and per-profile
/// key lists grow incrementally, and the final CSR build honors `budget`.
///
/// Output is bit-identical to [`token_blocking_with_dict`] run over the
/// concatenation of the chunks (pinned by tests).
pub fn token_blocking_streaming<I>(
    kind: ErKind,
    chunks: I,
    budget: &MemBudget,
) -> (TokenDict, CompactBlocks)
where
    I: IntoIterator<Item = Vec<Profile>>,
{
    let mut builder = DictBuilder::new();
    let mut scratch = String::new();
    let mut keys = ProfileKeys::new();
    let mut buf: Vec<u32> = Vec::new();
    let mut total = 0u32;
    let mut source0 = 0u32;
    for chunk in chunks {
        for p in &chunk {
            debug_assert_eq!(p.id.0, total, "profiles must stream in id order");
            for a in &p.attributes {
                each_token(&a.value, &mut scratch, |t| buf.push(builder.intern(t)));
            }
            keys.push_keys(&mut buf);
            if p.source.0 == 0 {
                source0 += 1;
            }
            total += 1;
        }
        // `chunk` drops here: the raw profile strings are released before
        // the next chunk is interned.
    }
    let separator = match kind {
        ErKind::Dirty => total,
        ErKind::CleanClean => source0,
    };
    let (dict, perm) = builder.finish();
    keys.remap(&perm);
    let compact =
        CompactBlocks::from_profile_keys_budgeted(kind, separator, dict.len(), &keys, budget);
    (dict, compact)
}

/// Token Blocking over a pre-built [`TokenDict`]: buckets profiles by
/// dictionary id with a counting sort and returns the CSR-packed
/// [`CompactBlocks`]. Pays a binary-search lookup per token occurrence, so
/// prefer [`token_blocking_with_dict`] unless the dictionary already
/// exists (e.g. shared with loose-schema partitioning).
///
/// Blocks come out ordered by token id, which (ids being assigned in
/// lexicographic token order) is exactly the sorted-key order of
/// [`token_blocking`]; `materialize(&dict)` yields the identical
/// [`BlockCollection`].
pub fn token_blocking_interned(collection: &ProfileCollection, dict: &TokenDict) -> CompactBlocks {
    let mut scratch = String::new();
    let keys = ProfileKeys::collect(collection.profiles(), |p, buf| {
        for a in &p.attributes {
            each_token(&a.value, &mut scratch, |t| {
                if let Some(id) = dict.lookup(t) {
                    buf.push(id.0);
                }
            });
        }
    });
    CompactBlocks::from_profile_keys(collection.kind(), collection.separator(), dict.len(), &keys)
}

/// The original string-keyed Token Blocking: buckets into a
/// `HashMap<String, members>` and sorts the keys. Reference implementation
/// for the interned fast path — property tests assert
/// [`token_blocking`] produces the identical collection, and the blocking
/// benchmark measures one against the other.
pub fn token_blocking_string(collection: &ProfileCollection) -> BlockCollection {
    keyed_blocking_string(collection, |p| p.token_set().into_iter().collect())
}

/// Blocking with caller-provided keys: `key_fn` maps each profile to its set
/// of blocking keys. This is the hook used by Blast's loose-schema blocking,
/// where keys are `token ⧺ "_" ⧺ attribute-partition id` (Figure 2(b)).
///
/// Duplicate keys emitted for one profile are collapsed. The produced keys
/// are interned into an ad-hoc sorted key table and blocks are built by the
/// same counting-sort CSR construction as [`token_blocking_interned`];
/// output is identical to the string-keyed reference.
pub fn keyed_blocking(
    collection: &ProfileCollection,
    key_fn: impl Fn(&Profile) -> Vec<String>,
) -> BlockCollection {
    // Materialize each profile's key set once, then intern the distinct
    // keys into a sorted table: index == dense id, ascending id == sorted
    // key order.
    let per_profile: Vec<Vec<String>> = collection
        .profiles()
        .iter()
        .map(|p| {
            let mut keys = key_fn(p);
            keys.sort_unstable();
            keys.dedup();
            keys
        })
        .collect();
    let mut table: Vec<&str> = per_profile
        .iter()
        .flat_map(|keys| keys.iter().map(String::as_str))
        .collect();
    table.sort_unstable();
    table.dedup();

    let keys = ProfileKeys::collect(&per_profile, |profile_keys, buf| {
        for k in profile_keys {
            let id = table
                .binary_search(&k.as_str())
                .expect("key came from the table");
            buf.push(id as u32);
        }
    });
    let compact = CompactBlocks::from_profile_keys(
        collection.kind(),
        collection.separator(),
        table.len(),
        &keys,
    );
    compact.materialize_with(|id| table[id.index()].to_string())
}

/// The original map-based keyed blocking, kept as the reference
/// implementation behind [`token_blocking_string`].
pub fn keyed_blocking_string(
    collection: &ProfileCollection,
    key_fn: impl Fn(&Profile) -> Vec<String>,
) -> BlockCollection {
    let mut buckets: HashMap<String, [Vec<ProfileId>; 2]> = HashMap::new();
    for p in collection.profiles() {
        let mut keys = key_fn(p);
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let entry = buckets.entry(key).or_default();
            entry[p.source.0 as usize].push(p.id);
        }
    }
    let mut keys: Vec<String> = buckets.keys().cloned().collect();
    keys.sort_unstable();
    let blocks = keys
        .into_iter()
        .map(|k| {
            let [s0, s1] = buckets.remove(&k).expect("key from buckets");
            match collection.kind() {
                ErKind::Dirty => Block::dirty(k, s0),
                ErKind::CleanClean => Block::clean_clean(k, s0, s1),
            }
        })
        .collect();
    BlockCollection::new(collection.kind(), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{Pair, Profile, SourceId};

    /// The paper's Figure 1 toy data: four bibliographic profiles from two
    /// sources.
    pub(crate) fn figure1_collection() -> ProfileCollection {
        // Source 1: structured records p1, p2.
        let p1 = Profile::builder(SourceId(0), "p1")
            .attr("Name", "Blast")
            .attr("Authors", "G. Simonini")
            .attr("Abstract", "how to improve meta-blocking")
            .build();
        let p2 = Profile::builder(SourceId(0), "p2")
            .attr("Name", "SparkER")
            .attr("Authors", "L. Gagliardelli")
            .attr("Abstract", "Simonini et al proposed blocking")
            .build();
        // Source 2: BibTeX-ish records p3, p4.
        let p3 = Profile::builder(SourceId(1), "p3")
            .attr("title", "Blast: loosely schema blocking")
            .attr("author", "Giovanni Simonini")
            .attr("year", "2016")
            .build();
        let p4 = Profile::builder(SourceId(1), "p4")
            .attr("title", "SparkER: parallel Blast")
            .attr("author", "Luca Gagliardelli")
            .attr("year", "2017")
            .build();
        ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4])
    }

    fn block_members(bc: &BlockCollection, key: &str) -> Vec<u32> {
        bc.blocks()
            .iter()
            .find(|b| b.key == key)
            .map(|b| b.all_members().map(|p| p.0).collect())
            .unwrap_or_default()
    }

    #[test]
    fn figure1_blocks_match_paper() {
        // Figure 1(b): blast{p1,p3,p4}, simonini{p1,p2,p3}, blocking{p1,p2,p3},
        // gagliardelli{p2,p4}, sparker{p2,p4}. (ids: p1=0, p2=1, p3=2, p4=3)
        let bc = token_blocking(&figure1_collection());
        assert_eq!(block_members(&bc, "blast"), vec![0, 2, 3]);
        assert_eq!(block_members(&bc, "simonini"), vec![0, 1, 2]);
        assert_eq!(block_members(&bc, "blocking"), vec![0, 1, 2]);
        assert_eq!(block_members(&bc, "gagliardelli"), vec![1, 3]);
        assert_eq!(block_members(&bc, "sparker"), vec![1, 3]);
    }

    #[test]
    fn single_source_tokens_do_not_block() {
        let bc = token_blocking(&figure1_collection());
        // "2016"/"2017" appear only in source 2 (one profile each);
        // "abstract" tokens only in source 1.
        assert!(block_members(&bc, "2016").is_empty());
        assert!(block_members(&bc, "improve").is_empty());
        // "et"/"al" appear in p2 only.
        assert!(block_members(&bc, "et").is_empty());
    }

    #[test]
    fn dirty_blocking_blocks_within_source() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a")
                .attr("n", "alpha beta")
                .build(),
            Profile::builder(SourceId(0), "b")
                .attr("n", "beta gamma")
                .build(),
            Profile::builder(SourceId(0), "c")
                .attr("n", "delta")
                .build(),
        ]);
        let bc = token_blocking(&coll);
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.blocks()[0].key, "beta");
        assert_eq!(
            bc.candidate_pairs().into_iter().collect::<Vec<_>>(),
            vec![Pair::new(ProfileId(0), ProfileId(1))]
        );
    }

    #[test]
    fn duplicate_keys_for_one_profile_collapse() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a")
                .attr("n", "word word word")
                .attr("m", "word")
                .build(),
            Profile::builder(SourceId(0), "b").attr("n", "word").build(),
        ]);
        let bc = token_blocking(&coll);
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.blocks()[0].size(), 2);
    }

    #[test]
    fn keyed_blocking_custom_keys() {
        let coll = figure1_collection();
        // Key every profile by its first author token suffixed with a
        // partition marker — a tiny loose-schema stand-in.
        let bc = keyed_blocking(&coll, |p| {
            p.token_set()
                .into_iter()
                .map(|t| format!("{t}_1"))
                .collect()
        });
        assert!(bc.blocks().iter().all(|b| b.key.ends_with("_1")));
        assert_eq!(bc.len(), 5);
    }

    #[test]
    fn empty_collection_yields_no_blocks() {
        let bc = token_blocking(&ProfileCollection::dirty(vec![]));
        assert!(bc.is_empty());
    }

    #[test]
    fn keys_are_sorted_deterministically() {
        let bc = token_blocking(&figure1_collection());
        let keys: Vec<&str> = bc.blocks().iter().map(|b| b.key.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn interned_matches_string_reference() {
        let coll = figure1_collection();
        assert_eq!(
            token_blocking(&coll).blocks(),
            token_blocking_string(&coll).blocks()
        );
    }

    #[test]
    fn keyed_matches_string_reference() {
        let coll = figure1_collection();
        let key_fn = |p: &Profile| {
            p.token_set()
                .into_iter()
                .map(|t| format!("{t}_9"))
                .collect()
        };
        assert_eq!(
            keyed_blocking(&coll, key_fn).blocks(),
            keyed_blocking_string(&coll, key_fn).blocks()
        );
    }

    #[test]
    fn streaming_blocking_matches_monolithic_at_any_chunking() {
        let coll = figure1_collection();
        let (dict, compact) = token_blocking_with_dict(&coll);
        for chunk_size in [1usize, 2, 3, 4] {
            let chunks: Vec<Vec<Profile>> = coll
                .profiles()
                .chunks(chunk_size)
                .map(|c| c.to_vec())
                .collect();
            let (sdict, scompact) =
                token_blocking_streaming(coll.kind(), chunks, &MemBudget::unlimited());
            assert_eq!(sdict.len(), dict.len(), "chunk={chunk_size}");
            assert_eq!(scompact, compact, "chunk={chunk_size}");
        }
        // Dirty kind too, with a budget tight enough to chunk the CSR build.
        let dirty = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a").attr("n", "x y").build(),
            Profile::builder(SourceId(0), "b").attr("n", "y z").build(),
            Profile::builder(SourceId(0), "c").attr("n", "z x").build(),
        ]);
        let (_, expect) = token_blocking_with_dict(&dirty);
        let chunks: Vec<Vec<Profile>> = dirty.profiles().chunks(2).map(|c| c.to_vec()).collect();
        let (_, got) = token_blocking_streaming(dirty.kind(), chunks, &MemBudget::limited(1));
        assert_eq!(got, expect);
    }

    #[test]
    fn budgeted_with_dict_is_bit_identical() {
        let coll = figure1_collection();
        let (dict, compact) = token_blocking_with_dict(&coll);
        for budget in [MemBudget::unlimited(), MemBudget::limited(1)] {
            let (bdict, bcompact) = token_blocking_with_dict_budgeted(&coll, &budget);
            assert_eq!(bdict.len(), dict.len());
            assert_eq!(bcompact, compact);
        }
    }

    #[test]
    fn compact_blocks_expose_counts_without_materializing() {
        let coll = figure1_collection();
        let dict = TokenDict::build(&coll);
        let compact = token_blocking_interned(&coll, &dict);
        let reference = token_blocking_string(&coll);
        assert_eq!(compact.len(), reference.len());
        assert_eq!(compact.total_comparisons(), reference.total_comparisons());
        for (b, blk) in reference.blocks().iter().enumerate() {
            assert_eq!(dict.resolve(compact.key(b)), blk.key);
        }
    }
}
