//! Alternative block-building methods from the indexing survey the paper
//! cites (Christen, TKDE 2012): q-gram blocking and sorted-neighborhood.
//!
//! These serve as baselines for the token-blocking family in the
//! experiments: q-grams trade precision for typo-robust recall; sorted
//! neighborhood bounds the comparison count by construction.

use crate::collection::BlockCollection;
use crate::tokenblocking::keyed_blocking;
use sparker_profiles::{ngrams, tokenize, ErKind, Pair, Profile, ProfileCollection, ProfileId};
use std::collections::HashSet;

/// Q-gram blocking: every character q-gram of every token is a blocking
/// key, so profiles block together even when tokens disagree by typos.
///
/// More recall-robust than token blocking under character noise, at the
/// price of many more (and larger) blocks — purging/filtering matter even
/// more here.
pub fn ngram_blocking(collection: &ProfileCollection, q: usize) -> BlockCollection {
    assert!(q >= 2, "q-grams need q ≥ 2, got {q}");
    keyed_blocking(collection, |p| {
        let mut keys = Vec::new();
        for a in &p.attributes {
            for token in tokenize(&a.value) {
                keys.extend(ngrams(&token, q));
            }
        }
        keys
    })
}

/// The sorting key of a profile for sorted-neighborhood: its smallest
/// tokens concatenated (a simple, schema-agnostic surrogate for the
/// hand-crafted keys of the classic method).
fn default_sn_key(profile: &Profile) -> String {
    let tokens = profile.token_set();
    tokens
        .iter()
        .take(3)
        .cloned()
        .collect::<Vec<_>>()
        .join("\u{1}")
}

/// Sorted-neighborhood blocking: sort all profiles by a key, slide a window
/// of `window` profiles over the sorted order, and emit every comparable
/// pair inside the window.
///
/// Comparisons are bounded by `n · (window − 1)` regardless of data skew —
/// the method's selling point — but recall depends entirely on near-
/// duplicates sorting next to each other. Uses the built-in key (smallest
/// tokens concatenated) unless a
/// custom key is supplied via [`sorted_neighborhood_by`].
pub fn sorted_neighborhood(collection: &ProfileCollection, window: usize) -> HashSet<Pair> {
    sorted_neighborhood_by(collection, window, default_sn_key)
}

/// [`sorted_neighborhood`] with a caller-supplied sorting key. Multi-pass
/// sorted neighborhood is the union of calls with different keys.
pub fn sorted_neighborhood_by(
    collection: &ProfileCollection,
    window: usize,
    key_fn: impl Fn(&Profile) -> String,
) -> HashSet<Pair> {
    assert!(
        window >= 2,
        "window must cover at least 2 profiles, got {window}"
    );
    let mut keyed: Vec<(String, &Profile)> = collection
        .profiles()
        .iter()
        .map(|p| (key_fn(p), p))
        .collect();
    // Sort by key, breaking ties by id for determinism.
    keyed.sort_by(|(ka, pa), (kb, pb)| ka.cmp(kb).then(pa.id.cmp(&pb.id)));

    let mut pairs = HashSet::new();
    for (i, (_, a)) in keyed.iter().enumerate() {
        for (_, b) in keyed.iter().skip(i + 1).take(window - 1) {
            match collection.kind() {
                ErKind::Dirty => {
                    pairs.insert(Pair::new(a.id, b.id));
                }
                ErKind::CleanClean => {
                    if a.source != b.source {
                        pairs.insert(Pair::new(a.id, b.id));
                    }
                }
            }
        }
    }
    pairs
}

/// Canopy clustering (McCallum et al.; survey §"canopies"): build
/// candidate groups with a cheap similarity. Profiles are scanned in id
/// order; an unclaimed profile seeds a canopy, every profile with cheap
/// similarity ≥ `loose` joins it, and those with similarity ≥ `tight`
/// (≥ loose) are removed from the seed pool, so canopies overlap but seeds
/// spread out. The cheap similarity is Jaccard over token sets, computed
/// via an inverted index (never all-pairs).
///
/// Returns the canopies as a [`BlockCollection`] (one block per canopy,
/// keyed by the seed's id), so the standard purging/filtering/meta-blocking
/// stack composes on top.
pub fn canopy_blocking(collection: &ProfileCollection, loose: f64, tight: f64) -> BlockCollection {
    assert!(
        0.0 < loose && loose <= tight && tight <= 1.0,
        "need 0 < loose ({loose}) <= tight ({tight}) <= 1"
    );
    // Inverted index token -> profiles, plus per-profile token counts.
    let mut index: std::collections::HashMap<&str, Vec<u32>> = std::collections::HashMap::new();
    let token_sets: Vec<std::collections::BTreeSet<String>> = collection
        .profiles()
        .iter()
        .map(|p| p.token_set())
        .collect();
    for (i, tokens) in token_sets.iter().enumerate() {
        for t in tokens {
            index.entry(t.as_str()).or_default().push(i as u32);
        }
    }

    let n = collection.len();
    let mut in_seed_pool = vec![true; n];
    let mut blocks = Vec::new();
    for seed in 0..n {
        if !in_seed_pool[seed] {
            continue;
        }
        in_seed_pool[seed] = false;
        // Count shared tokens with every profile sharing ≥1 token.
        let mut shared: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for t in &token_sets[seed] {
            if let Some(ids) = index.get(t.as_str()) {
                for &other in ids {
                    if other as usize != seed {
                        *shared.entry(other).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut members: Vec<(u8, ProfileId)> =
            vec![(collection.profiles()[seed].source.0, ProfileId(seed as u32))];
        for (&other, &inter) in &shared {
            let o = other as usize;
            let union = token_sets[seed].len() + token_sets[o].len() - inter as usize;
            let sim = inter as f64 / union.max(1) as f64;
            if sim >= loose {
                members.push((collection.profiles()[o].source.0, ProfileId(other)));
                if sim >= tight {
                    in_seed_pool[o] = false;
                }
            }
        }
        if members.len() < 2 {
            continue;
        }
        let key = format!("canopy-{seed}");
        let s0: Vec<ProfileId> = members
            .iter()
            .filter(|(s, _)| *s == 0)
            .map(|(_, p)| *p)
            .collect();
        let s1: Vec<ProfileId> = members
            .iter()
            .filter(|(s, _)| *s == 1)
            .map(|(_, p)| *p)
            .collect();
        blocks.push(match collection.kind() {
            ErKind::Dirty => crate::block::Block::dirty(key, s0),
            ErKind::CleanClean => crate::block::Block::clean_clean(key, s0, s1),
        });
    }
    BlockCollection::new(collection.kind(), blocks)
}

/// Build a sorting-key function for sorted-neighborhood based on token
/// rarity: a profile's key is its rarest corpus token (ties lexicographic),
/// then its second rarest. Rare tokens (model numbers, ids) are exactly the
/// ones duplicates share and non-duplicates don't, so near-duplicates sort
/// adjacently without any schema knowledge.
pub fn rarest_token_key(collection: &ProfileCollection) -> impl Fn(&Profile) -> String {
    let mut freq: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    for p in collection.profiles() {
        for t in p.token_set() {
            *freq.entry(t).or_insert(0) += 1;
        }
    }
    move |profile: &Profile| {
        let mut tokens: Vec<String> = profile.token_set().into_iter().collect();
        tokens.sort_by_key(|t| (freq.get(t).copied().unwrap_or(0), t.clone()));
        tokens.into_iter().take(2).collect::<Vec<_>>().join("\u{1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::SourceId;

    fn collection() -> ProfileCollection {
        ProfileCollection::dirty(
            [
                "bravia television", // p0
                "brevia television", // p1: typo'd duplicate of p0
                "galaxy phone",      // p2
                "walkman player",    // p3
            ]
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Profile::builder(SourceId(0), i.to_string())
                    .attr("name", *n)
                    .build()
            })
            .collect(),
        )
    }

    #[test]
    fn ngram_blocking_survives_typos() {
        let coll = collection();
        // Token blocking misses (p0,p1) on the name token: bravia ≠ brevia
        // (they still share "television"); q-gram blocking catches the
        // misspelled token itself.
        let token_pairs = crate::token_blocking(&coll).candidate_pairs();
        assert!(token_pairs.contains(&Pair::new(ProfileId(0), ProfileId(1))));
        let grams = ngram_blocking(&coll, 3);
        let pairs = grams.candidate_pairs();
        assert!(pairs.contains(&Pair::new(ProfileId(0), ProfileId(1))));
        // "via" gram shared by bravia/brevia even without "television".
        assert!(grams.blocks().iter().any(|b| b.key == "via"));
        // q-grams produce at least as many candidate pairs.
        assert!(pairs.len() >= token_pairs.len());
    }

    #[test]
    #[should_panic(expected = "q ≥ 2")]
    fn unigram_rejected() {
        ngram_blocking(&collection(), 1);
    }

    #[test]
    fn sorted_neighborhood_window_bounds_comparisons() {
        let coll = collection();
        let pairs = sorted_neighborhood(&coll, 2);
        // Window 2 on 4 profiles → at most 3 pairs.
        assert!(pairs.len() <= 3);
        let wide = sorted_neighborhood(&coll, 4);
        assert_eq!(wide.len(), 6, "window = n covers all pairs");
    }

    #[test]
    fn sorted_neighborhood_finds_sort_adjacent_duplicates() {
        let coll = collection();
        // Keys: p0 "bravia…", p1 "brevia…" sort adjacently.
        let pairs = sorted_neighborhood(&coll, 2);
        assert!(pairs.contains(&Pair::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn clean_clean_keeps_cross_source_only() {
        let coll = ProfileCollection::clean_clean(
            vec![
                Profile::builder(SourceId(0), "a")
                    .attr("n", "alpha one")
                    .build(),
                Profile::builder(SourceId(0), "b")
                    .attr("n", "alpha two")
                    .build(),
            ],
            vec![Profile::builder(SourceId(1), "c")
                .attr("n", "alpha three")
                .build()],
        );
        let pairs = sorted_neighborhood(&coll, 3);
        for p in &pairs {
            assert!(coll.is_comparable(p.first, p.second));
        }
    }

    #[test]
    fn multi_pass_union_increases_recall() {
        let coll = collection();
        let pass1 = sorted_neighborhood_by(&coll, 2, |p| {
            p.token_set().iter().next().cloned().unwrap_or_default()
        });
        let pass2 = sorted_neighborhood_by(&coll, 2, |p| {
            p.token_set().iter().last().cloned().unwrap_or_default()
        });
        let union: HashSet<Pair> = pass1.union(&pass2).copied().collect();
        assert!(union.len() >= pass1.len().max(pass2.len()));
    }

    #[test]
    fn rarest_token_key_sorts_duplicates_adjacently() {
        let coll = collection();
        let key = rarest_token_key(&coll);
        let pairs = sorted_neighborhood_by(&coll, 2, key);
        // p0/p1 share the rare "television" context but their rarest tokens
        // are the misspelling-unique names; p2/p3 have unique tokens too, so
        // window-2 recall depends on the data. At minimum the call is
        // deterministic and bounded.
        assert!(pairs.len() <= 3);
        let key2 = rarest_token_key(&coll);
        assert_eq!(pairs, sorted_neighborhood_by(&coll, 2, key2));
    }

    #[test]
    fn canopy_blocking_groups_similar_profiles() {
        let coll = collection();
        // p0/p1 share "television" (J = 1/3); loose 0.3 groups them.
        let canopies = canopy_blocking(&coll, 0.3, 0.6);
        let pairs = canopies.candidate_pairs();
        assert!(pairs.contains(&Pair::new(ProfileId(0), ProfileId(1))));
        assert!(!pairs.contains(&Pair::new(ProfileId(0), ProfileId(2))));
    }

    #[test]
    fn canopy_tight_threshold_prunes_seeds() {
        // Identical profiles: with tight = loose the duplicate never seeds
        // its own canopy, so exactly one canopy forms.
        let coll = ProfileCollection::dirty(
            (0..3)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("n", "same tokens here")
                        .build()
                })
                .collect(),
        );
        let canopies = canopy_blocking(&coll, 0.5, 0.5);
        assert_eq!(canopies.len(), 1);
        assert_eq!(canopies.blocks()[0].size(), 3);
        // With tight = 1.0... identical sets have J = 1.0, still pruned.
        let strict = canopy_blocking(&coll, 0.5, 1.0);
        assert_eq!(strict.len(), 1);
    }

    #[test]
    #[should_panic(expected = "loose")]
    fn canopy_rejects_inverted_thresholds() {
        canopy_blocking(&collection(), 0.8, 0.3);
    }

    #[test]
    fn deterministic() {
        let coll = collection();
        assert_eq!(sorted_neighborhood(&coll, 3), sorted_neighborhood(&coll, 3));
        let a = ngram_blocking(&coll, 3);
        let b = ngram_blocking(&coll, 3);
        assert_eq!(a.blocks(), b.blocks());
        let c1 = canopy_blocking(&coll, 0.2, 0.5);
        let c2 = canopy_blocking(&coll, 0.2, 0.5);
        assert_eq!(c1.blocks(), c2.blocks());
    }
}
