//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This vendored stand-in implements exactly the surface
//! the workspace calls — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` and `seq::SliceRandom::shuffle` — on top of
//! a xoshiro256++ generator. Streams differ from upstream `rand`, but every
//! use in this repo is seeded and asserts distributional properties, not
//! exact draws.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator interface (object-safe core of `RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
///
/// `SampleRange` is implemented *blanket-style* over this trait — exactly
/// like upstream `rand` — so that `gen_range(0..28)` unifies the output
/// type with the range's element type during inference (per-concrete-type
/// impls would leave integer literals ambiguous).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and deterministic across platforms.
    ///
    /// Stand-in for `rand::rngs::StdRng` (which makes no cross-version
    /// stream guarantee anyway).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: Fisher–Yates shuffle.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
