//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This vendored stand-in keeps the same surface
//! syntax — the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! `Strategy` combinators, range/tuple/regex-literal strategies and the
//! `prop::{collection, sample, option}` modules — but generates values with
//! a simple deterministic RNG and performs **no shrinking**: a failing case
//! is reported with the generated inputs as-is.

use std::fmt::Debug;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic seed so failures reproduce across runs.
    pub fn deterministic() -> Self {
        Self::from_seed(0x5EED_CAFE_F00D_0001)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// produces one value per test case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate values, keeping only those `f` maps to `Some`.
    fn prop_filter_map<U, R, F>(self, reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Dependent generation: derive a second strategy from each generated
    /// value (mirrors `proptest`'s `prop_flat_map`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: each level is a 50/50 mix of the leaf (`self`)
    /// and `f` applied to the previous level, nested `depth` times.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy (mirrors `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected too many values: {}", self.reason);
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len());
        self.variants[i].generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, any::<T>(), string patterns
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F2)
}

/// Types with a canonical whole-domain strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, spread over a wide range; NaN/inf excluded on purpose.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII with occasional multibyte points.
        const EXTRA: &[char] = &['é', 'ß', 'λ', 'Ж', '中', 'ñ'];
        if rng.below(8) == 0 {
            EXTRA[rng.below(EXTRA.len())]
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- string pattern strategies ---------------------------------------------

/// `&str` strategies interpret the string as a tiny regex subset:
/// a sequence of atoms (`[class]`, `\PC`, or a literal char), each with an
/// optional `{m}` / `{m,n}` quantifier. This covers every pattern used in
/// the workspace test suites.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

/// Printable pool for `\PC` (any char outside Unicode category C).
fn non_control_pool() -> Vec<char> {
    let mut pool: Vec<char> = (b' '..=b'~').map(char::from).collect();
    pool.extend(['é', 'ß', 'λ', 'Ж', '中', 'ñ', '½', 'Ä', 'ø']);
    pool
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let pool: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                let mut pending_range = false;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '\\' => {
                            // Inside-class escape: next char is literal.
                            // (All escapes used in-repo are single-char.)
                            prev = Some('\\');
                            class.push('\\');
                            continue;
                        }
                        '-' if prev.is_some() => {
                            pending_range = true;
                            continue;
                        }
                        d if pending_range => {
                            let lo = class.pop().expect("range start");
                            for u in (lo as u32)..=(d as u32) {
                                if let Some(ch) = char::from_u32(u) {
                                    class.push(ch);
                                }
                            }
                            pending_range = false;
                            prev = None;
                            continue;
                        }
                        d => {
                            class.push(d);
                            prev = Some(d);
                        }
                    }
                }
                if pending_range {
                    class.push('-'); // trailing '-' is a literal
                }
                assert!(!class.is_empty(), "empty char class in pattern {pattern:?}");
                class
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC` — not in category C (control): printable pool.
                    let next = chars.next();
                    assert_eq!(next, Some('C'), "unsupported escape in {pattern:?}");
                    non_control_pool()
                }
                Some(lit) => vec![lit],
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            lit => vec![lit],
        };
        // Optional quantifier.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            out.push(pool[rng.below(pool.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// prop::{collection, sample, option}, proptest::bool
// ---------------------------------------------------------------------------

/// Inclusive size bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates may make the exact target unreachable (small
            // element domains); cap the attempts like upstream does.
            for _ in 0..target.saturating_mul(10).max(32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(10).max(32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        let items = items.into();
        assert!(!items.is_empty(), "select over empty collection");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, like upstream's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform `bool` (mirrors `proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// Config, errors, macros
// ---------------------------------------------------------------------------

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: retry with a fresh input.
    Reject(String),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Construct a rejection (mirrors `TestCaseError::reject` upstream).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Construct a failure (mirrors `TestCaseError::fail` upstream).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $parm = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).saturating_add(1024),
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            passed + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Mirrors `proptest::prelude::*` for `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let (a, b) = (0u8..20, 1usize..=8).generate(&mut rng);
            assert!(a < 20 && (1..=8).contains(&b));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..100 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~]{0,15}".generate(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let p = "\\PC{0,60}".generate(&mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
            let d = "[a-zA-Z0-9 ,.;-]{0,60}".generate(&mut rng);
            assert!(d
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.;-".contains(c)));
        }
    }

    #[test]
    fn collections_and_combinators() {
        let mut rng = crate::TestRng::deterministic();
        let strat = prop::collection::vec((0u8..10, crate::bool::ANY), 0..30).prop_map(|v| v.len());
        for _ in 0..50 {
            assert!(strat.generate(&mut rng) < 30);
            let m = prop::collection::btree_map("[a-z]{1,6}", 0u32..5, 0..4).generate(&mut rng);
            assert!(m.len() < 4);
            let sel = prop::sample::select(vec![3, 5, 7]).generate(&mut rng);
            assert!([3, 5, 7].contains(&sel));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(any::<i32>(), 0..50), (w, p) in (1usize..4, 1usize..4)) {
            prop_assume!(w + p > 1);
            prop_assert_eq!(v.len(), v.clone().len());
            prop_assert!(w < 4 && p < 4);
        }
    }
}
