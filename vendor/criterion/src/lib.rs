//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This stand-in keeps the same bench-source
//! surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `black_box`) and
//! measures wall-clock time with a fixed warmup + N-sample loop. Results
//! print to stdout; set `BENCH_JSON=<path>` to also dump all measurements
//! of the process as a JSON array.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, e.g. `dataflow/shuffle/group_by_key`.
    pub id: String,
    /// Number of timed iterations (0 for value-only rows).
    pub samples: usize,
    pub mean: Duration,
    pub median: Duration,
    pub min: Duration,
    pub max: Duration,
    /// Dimensionless scalar for non-timing rows (peak RSS, spill counts,
    /// speedup ratios) recorded via [`Criterion::record_value`]; `None` on
    /// timing rows. Serialized as a `"value"` field in the JSON dump so
    /// consumers never have to reinterpret `mean_ns` as a non-time unit.
    pub value: Option<f64>,
}

/// Identifier for a parameterised bench (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a bench name (`&str` or `BenchmarkId`).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, one sample per invocation after a short warmup.
    ///
    /// With `BENCH_SMOKE` set in the environment the warmup is skipped and
    /// exactly one sample is taken — CI uses this to execute every bench
    /// body (catching panics and API drift) without paying measurement
    /// time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let smoke = smoke_mode();
        if !smoke {
            // Warmup: two untimed runs populate caches and lazy state.
            for _ in 0..2 {
                black_box(routine());
            }
        }
        let budget = Duration::from_secs(3);
        let started = Instant::now();
        let samples = if smoke { 1 } else { self.sample_size };
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget && self.samples.len() >= 5 {
                break;
            }
        }
    }
}

/// `true` when `BENCH_SMOKE` is set (to anything non-empty): 1-sample,
/// no-warmup smoke execution for CI.
pub fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// The top-level harness (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into_id(), 50, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Record an externally measured duration as a result row — used to
    /// export auxiliary measurements (e.g. per-stage wall times from the
    /// dataflow engine's own metrics) into the same `BENCH_JSON` dump.
    pub fn record(&mut self, id: impl Into<String>, samples: usize, d: Duration) {
        self.results.push(BenchResult {
            id: id.into(),
            samples,
            mean: d,
            median: d,
            min: d,
            max: d,
            value: None,
        });
    }

    /// Record a dimensionless measurement (peak RSS in MiB, spill batch
    /// counts, speedup ratios …) as a result row. Unlike abusing
    /// [`Criterion::record`] with a fake duration, the scalar lands in the
    /// JSON dump as a dedicated `"value"` field and the timing fields stay
    /// zero.
    pub fn record_value(&mut self, id: impl Into<String>, value: f64) {
        self.results.push(BenchResult {
            id: id.into(),
            samples: 0,
            mean: Duration::ZERO,
            median: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
            value: Some(value),
        });
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut b = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut sorted = b.samples.clone();
        if sorted.is_empty() {
            return;
        }
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let result = BenchResult {
            id,
            samples: sorted.len(),
            mean: total / sorted.len() as u32,
            median: sorted[sorted.len() / 2],
            min: sorted[0],
            max: *sorted.last().unwrap(),
            value: None,
        };
        println!(
            "{:<50} time: [{:>12?} {:>12?} {:>12?}] ({} samples)",
            result.id, result.min, result.median, result.max, result.samples
        );
        self.results.push(result);
    }

    /// Write all recorded results as JSON to `path`.
    pub fn dump_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\": {:?}, \"samples\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
                r.id,
                r.samples,
                r.mean.as_nanos(),
                r.median.as_nanos(),
                r.min.as_nanos(),
                r.max.as_nanos()
            ));
            if let Some(v) = r.value {
                out.push_str(&format!(", \"value\": {v}"));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        std::fs::write(path, out)
    }
}

/// Scoped group of related benches (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        self.parent.run_one(id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        self.parent.run_one(id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Accepted and ignored; the shim reports raw times only.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            if let Ok(path) = std::env::var("BENCH_JSON") {
                c.dump_json(&path).expect("write BENCH_JSON");
                eprintln!("bench results written to {path}");
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| (0..100).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[1].id, "grp/inner");
        assert_eq!(c.results()[2].id, "grp/7");
        assert!(c.results().iter().all(|r| r.samples > 0));
        assert!(c.results().iter().all(|r| r.value.is_none()));
    }

    #[test]
    fn value_rows_serialize_a_value_field_not_fake_times() {
        let mut c = Criterion::default();
        c.record("timed", 3, Duration::from_millis(2));
        c.record_value("grp/peak_rss_mb", 123.5);
        let row = &c.results()[1];
        assert_eq!(row.samples, 0);
        assert_eq!(row.mean, Duration::ZERO);
        assert_eq!(row.value, Some(123.5));
        let dir = std::env::temp_dir().join("criterion_shim_value_test.json");
        let path = dir.to_str().unwrap();
        c.dump_json(path).unwrap();
        let json = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(json.contains("\"value\": 123.5"), "{json}");
        // Timed rows carry no value field at all.
        let timed_line = json.lines().find(|l| l.contains("timed")).unwrap();
        assert!(!timed_line.contains("\"value\""), "{timed_line}");
    }
}
